"""Run journal, resume, and run-level self-healing (docs/RESILIENCE.md).

Contracts under test:

* journal records survive the writer: JSONL round-trips exactly, a
  torn final line (killed writer) is dropped, and re-appended records
  (duplicate ``seq``) are skipped on replay — property-tested with
  hypothesis;
* run directories have durable, collision-free identity keyed by the
  grid fingerprint, and resume refuses a mismatched grid;
* a run SIGKILLed mid-flight resumes to results bit-identical to an
  uninterrupted run, with every point accounted for exactly once
  across the joined journal segments (the ISSUE acceptance case);
* poison points (retries exhausted) are quarantined on resume instead
  of re-burning their retry budget;
* shard pools that die are restarted with their in-flight units
  requeued, and repeated deaths degrade to fewer shards instead of
  failing the run;
* SIGINT/SIGTERM drain gracefully: partial report, ``end{status=
  interrupted}``, conventional 128+signum exit code;
* the disk-space guard refuses writes instead of risking torn entries.
"""

import hashlib
import importlib
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.cpu.stats import SimStats
from repro.experiments import diskcache, runner
from repro.experiments.errors import (
    DiskFullError,
    PointFailure,
    ShardDiedError,
    SweepInterrupted,
)
from repro.experiments.faults import (
    ERROR,
    PARENT_SIGNAL,
    SHARD_KILL,
    TORN_JOURNAL,
    Fault,
    FaultPlan,
)
from repro.experiments.journal import (
    JournalError,
    RunJournal,
    grid_fingerprint,
    list_runs,
    read_run_events,
    run_sweep,
    runs_root,
)
from repro.experiments.service import (
    JsonlEventLog,
    ServiceConfig,
    ShutdownRequest,
    follow_events,
    format_events_summary,
    read_events,
    serve_sweep,
    summarize_events,
)
from repro.experiments.sweep import SweepPoint, sweep

sweep_mod = importlib.import_module("repro.experiments.sweep")

WORKLOAD = "mysql_sibench"


@pytest.fixture()
def cache_dir(tmp_path):
    """A private disk-cache root (and so run-journal root) per test."""
    previous = diskcache.set_cache_dir(tmp_path)
    runner.clear_run_cache()
    runner.reset_run_cache_stats()
    yield tmp_path
    runner.clear_run_cache()
    diskcache.set_cache_dir(previous)


def _points(n=6):
    prefetchers = [None, "eip", "mana", "hierarchical", "efetch"]
    seeds = [1, 2]
    pts = [SweepPoint(WORKLOAD, pf, scale="tiny", seed=seed)
           for seed in seeds for pf in prefetchers]
    return pts[:n]


def _fake_run_serial(point, use_cache):
    """Deterministic synthetic executor (same scheme as
    tests/test_service.py): scheduler, retries, cache, and journal are
    all real; only the simulation is synthesized per point key."""
    digest = hashlib.sha256(point.key().encode("utf-8")).hexdigest()
    stats = SimStats()
    stats.instructions = int(digest[:12], 16)
    stats.blocks = int(digest[12:20], 16)
    stats.cycles = float(int(digest[20:28], 16) % 99991) + 1.0
    if use_cache:
        runner.seed_cache(point.key(), stats, None)
        runner._disk_store(point.key(), stats, None)
    return stats, None, "sim", 0.001


@pytest.fixture()
def fake_executor(monkeypatch):
    monkeypatch.setattr(sweep_mod, "_run_serial", _fake_run_serial)


def _ref_states(points):
    return {p.key(): _fake_run_serial(p, False)[0].state_dict()
            for p in points}


def _config(**kw):
    kw.setdefault("shards", 2)
    kw.setdefault("jobs", 1)
    kw.setdefault("inline", True)
    kw.setdefault("backoff_base", 0.0)
    return ServiceConfig(**kw)


# ----------------------------------------------------------------------
# Journal records: hypothesis round-trips + recovery
# ----------------------------------------------------------------------
_FIELD_VALUES = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
            max_size=20),
    st.none(),
    st.booleans(),
)


def _event_stream():
    """Sequences of schema-shaped events with strictly increasing seq."""
    body = st.dictionaries(
        st.sampled_from(["index", "label", "source", "message", "shard",
                         "seconds", "attempt", "status"]),
        _FIELD_VALUES, max_size=4)
    return st.lists(
        st.tuples(st.sampled_from(
            ["begin", "scheduled", "completed", "retried", "failed",
             "heartbeat", "end"]), body),
        min_size=1, max_size=20,
    ).map(lambda items: [
        {"v": 2, "seq": i + 1, "event": kind, **fields}
        for i, (kind, fields) in enumerate(items)
    ])


class TestJournalRecords:
    @given(events=_event_stream())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_round_trip(self, tmp_path, events):
        path = tmp_path / "seg.jsonl"
        with JsonlEventLog(path, fsync=True) as log:
            for event in events:
                log(event)
        assert read_events(path) == events

    @given(events=_event_stream(), cut=st.integers(1, 80))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_torn_tail_recovers_prefix(self, tmp_path, events, cut):
        """Truncating anywhere inside the final record (a writer killed
        mid-append) must yield exactly the preceding records."""
        path = tmp_path / "seg.jsonl"
        with JsonlEventLog(path) as log:
            for event in events:
                log(event)
        data = path.read_bytes()
        last_line_start = data[:-1].rfind(b"\n") + 1
        torn_at = min(len(data) - 1,
                      last_line_start + cut % max(
                          1, len(data) - last_line_start - 1))
        path.write_bytes(data[:torn_at])
        assert read_events(path) == events[:-1]

    @given(events=_event_stream(), replayed=st.integers(1, 20))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_duplicate_seq_skipped(self, tmp_path, events, replayed):
        """A writer that re-appended its tail after a partial failure
        leaves duplicate seq numbers; replay keeps the first copy."""
        run_dir = tmp_path / "run"
        run_dir.mkdir(exist_ok=True)  # tmp_path is shared per-example
        path = run_dir / "events-0001.jsonl"
        replayed = min(replayed, len(events))
        with JsonlEventLog(path) as log:
            for event in events:
                log(event)
            for event in events[-replayed:]:  # the re-appended tail
                log(event)
        assert read_run_events(run_dir) == events

    def test_append_mode_keeps_existing_records(self, tmp_path):
        path = tmp_path / "seg.jsonl"
        with JsonlEventLog(path) as log:
            log({"seq": 1, "event": "begin"})
        with JsonlEventLog(path, append=True) as log:
            log({"seq": 2, "event": "end"})
        assert [e["seq"] for e in read_events(path)] == [1, 2]


# ----------------------------------------------------------------------
# Run-directory lifecycle
# ----------------------------------------------------------------------
class TestRunDirLifecycle:
    def test_fingerprint_is_grid_identity(self):
        pts = _points()
        assert grid_fingerprint(pts) == grid_fingerprint(list(pts))
        assert grid_fingerprint(pts) != grid_fingerprint(pts[:-1])

    def test_create_allocates_sequential_run_dirs(self, cache_dir):
        pts = _points()
        a = RunJournal.create(pts, _config())
        b = RunJournal.create(pts, _config())
        fp = grid_fingerprint(pts)[:12]
        assert a.run_id == f"{fp}-0001" and b.run_id == f"{fp}-0002"
        assert a.run_dir.parent == runs_root()
        meta = json.loads((a.run_dir / "meta.json").read_text())
        assert meta["fingerprint"] == grid_fingerprint(pts)
        assert meta["total"] == len(pts)
        assert meta["config"]["shards"] == 2

    def test_resume_picks_latest_and_opens_next_segment(self, cache_dir):
        pts = _points()
        RunJournal.create(pts, _config())
        b = RunJournal.create(pts, _config())
        with b.sink as sink:
            sink({"seq": 1, "event": "begin", "total": len(pts)})
        again = RunJournal.resume(pts)
        assert again.run_id == b.run_id
        assert again.segment == 2
        assert [r.name for r in list_runs()] == \
            [f"{grid_fingerprint(pts)[:12]}-000{i}" for i in (1, 2)]

    def test_resume_rejects_wrong_grid(self, cache_dir):
        pts = _points()
        jr = RunJournal.create(pts, _config())
        with pytest.raises(JournalError, match="different grid"):
            RunJournal.resume(_points(4) + [pts[-1]], run_id=jr.run_id)
        with pytest.raises(JournalError, match="no such run"):
            RunJournal.resume(pts, run_id="deadbeef0000-0001")
        with pytest.raises(JournalError, match="no resumable run"):
            RunJournal.resume(_points(3))

    def test_resume_requires_the_cache(self, cache_dir, fake_executor):
        pts = _points(2)
        run_sweep(pts, _config(), progress=None, fault_plan=FaultPlan())
        with pytest.raises(JournalError, match="disk cache disabled"):
            run_sweep(pts, _config(use_cache=False), progress=None,
                      resume=True, fault_plan=FaultPlan())


# ----------------------------------------------------------------------
# Interruption + resume (the tentpole contract)
# ----------------------------------------------------------------------
class TestInterruptAndResume:
    def test_parent_signal_drains_and_resume_is_exactly_once(
            self, cache_dir, fake_executor):
        pts = _points(8)
        plan = FaultPlan([Fault(PARENT_SIGNAL, 3, signum=signal.SIGTERM)])
        with pytest.raises(SweepInterrupted) as exc:
            run_sweep(pts, _config(), progress=None, fault_plan=plan,
                      handle_signals=True)
        assert exc.value.signum == signal.SIGTERM
        assert exc.value.exit_code == 128 + signal.SIGTERM
        run_id = exc.value.run_id
        assert run_id is not None
        assert 0 < len(exc.value.report.results) < len(pts)

        interrupted = summarize_events(
            read_run_events(runs_root() / run_id))
        assert interrupted["status"] == "interrupted"
        assert interrupted["missing"]  # genuinely unfinished

        report, journal = run_sweep(pts, _config(), progress=None,
                                    resume=True, run_id=run_id,
                                    fault_plan=FaultPlan())
        assert journal.run_id == run_id and journal.segment == 2
        ref = _ref_states(pts)
        assert len(report.results) == len(pts)
        for result in report:
            assert result.stats.state_dict() == ref[result.point.key()]
        summary = summarize_events(read_run_events(journal.run_dir))
        assert summary["total"] == len(pts)
        assert summary["completed"] == len(pts)
        assert summary["missing"] == [] and summary["duplicates"] == []
        assert summary["segments"] == 2 and summary["status"] == "ok"

    def test_explicit_shutdown_request_interrupts(self, cache_dir,
                                                  fake_executor):
        pts = _points(8)
        stop = ShutdownRequest()
        seen = []

        def sink(event):
            seen.append(event)
            if event["event"] == "completed" and len(
                    [e for e in seen if e["event"] == "completed"]) >= 2:
                stop.request()

        with pytest.raises(SweepInterrupted) as exc:
            serve_sweep(pts, _config(), events=sink, progress=None,
                        fault_plan=FaultPlan(), shutdown=stop)
        assert exc.value.signum is None and exc.value.exit_code == 130
        assert seen[-1]["event"] == "end"
        assert seen[-1]["status"] == "interrupted"

    def test_poison_points_quarantined_on_resume(self, cache_dir,
                                                 fake_executor):
        pts = _points(4)
        poison = FaultPlan([Fault(ERROR, 1)])  # persistent: exhausts
        report, journal = run_sweep(
            pts, _config(keep_going=True, max_retries=1),
            progress=None, fault_plan=poison)
        (failure,) = report.failures
        assert failure.index == 1 and failure.attempts == 2

        report2, journal2 = run_sweep(
            pts, _config(keep_going=True, max_retries=1),
            progress=None, resume=True, fault_plan=FaultPlan())
        assert journal2.replay_poisoned == 1
        assert journal2.replay_preresolved == 3
        (failure2,) = report2.failures
        assert failure2.index == 1
        assert failure2.kind == failure.kind
        assert failure2.attempts == failure.attempts

        segment2 = read_events(journal2.segment_path(2))
        kinds = [(e["event"], e.get("index")) for e in segment2]
        assert ("poisoned", 1) in kinds
        # No retry budget re-burned: the poison point is never
        # scheduled again, and its failed terminal stays unique.
        assert ("scheduled", 1) not in kinds
        summary = summarize_events(read_run_events(journal2.run_dir))
        assert summary["poisoned"] == [1]
        assert summary["failed"] == 1 and summary["duplicates"] == []
        assert "poisoned" in format_events_summary(summary)

    def test_poisoned_point_raises_under_fail_fast(self, cache_dir,
                                                   fake_executor):
        pts = _points(4)
        run = run_sweep(pts, _config(keep_going=True, max_retries=0),
                        progress=None,
                        fault_plan=FaultPlan([Fault(ERROR, 1)]))
        assert run[0].failures
        with pytest.raises(PointFailure):
            run_sweep(pts, _config(keep_going=False, max_retries=0),
                      progress=None, resume=True,
                      fault_plan=FaultPlan())

    def test_torn_journal_fault_then_resume(self, cache_dir,
                                            fake_executor):
        """An injected torn segment tail behaves like a writer killed
        mid-append: the damaged record is lost, its point re-enters."""
        pts = _points(4)
        plan = FaultPlan([Fault(TORN_JOURNAL, 1)])
        report, journal = run_sweep(pts, _config(), progress=None,
                                    fault_plan=plan)
        assert len(report.results) == len(pts)
        events = read_events(journal.segment_path(1))
        assert events, "torn tail must not destroy the whole segment"
        assert events[-1].get("event") != "end"  # the trailer was torn

        report2, journal2 = run_sweep(pts, _config(), progress=None,
                                      resume=True,
                                      fault_plan=FaultPlan())
        ref = _ref_states(pts)
        assert len(report2.results) == len(pts)
        for result in report2:
            assert result.stats.state_dict() == ref[result.point.key()]


# ----------------------------------------------------------------------
# SIGKILL chaos: kill -9 the parent mid-run, resume, prove bit-identity
# ----------------------------------------------------------------------
_CHILD_SCRIPT = textwrap.dedent("""
    import hashlib, importlib, sys, time
    # NB: ``import repro.experiments.sweep`` would bind the package's
    # re-exported sweep *function*, not the module.
    sweep_mod = importlib.import_module("repro.experiments.sweep")
    from repro.cpu.stats import SimStats
    from repro.experiments import runner
    from repro.experiments.journal import run_sweep
    from repro.experiments.service import ServiceConfig
    from repro.experiments.sweep import SweepPoint

    def fake_run_serial(point, use_cache):
        digest = hashlib.sha256(
            point.key().encode("utf-8")).hexdigest()
        stats = SimStats()
        stats.instructions = int(digest[:12], 16)
        stats.blocks = int(digest[12:20], 16)
        stats.cycles = float(int(digest[20:28], 16) % 99991) + 1.0
        time.sleep(0.25)  # slow enough for the parent to SIGKILL us
        if use_cache:
            runner.seed_cache(point.key(), stats, None)
            runner._disk_store(point.key(), stats, None)
        return stats, None, "sim", 0.001

    sweep_mod._run_serial = fake_run_serial
    points = [SweepPoint("mysql_sibench", pf, scale="tiny", seed=seed)
              for seed in (1, 2)
              for pf in (None, "eip", "mana", "hierarchical", "efetch")]
    config = ServiceConfig(shards=2, jobs=1, inline=True,
                           backoff_base=0.0)
    print("ready", flush=True)
    run_sweep(points, config, progress=None)
""")


class TestSigkillChaos:
    def test_sigkill_resume_bit_identical_exactly_once(
            self, cache_dir, fake_executor):
        pts = _points(10)
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parents[1] / "src"),
             env.get("PYTHONPATH", "")])
        env.pop("REPRO_FAULT_PLAN", None)
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            # Wait for durable evidence of progress, then kill -9.
            deadline = time.monotonic() + 60.0
            completed = 0
            while time.monotonic() < deadline:
                runs = list_runs(fingerprint=grid_fingerprint(pts))
                if runs:
                    events = read_run_events(runs[0])
                    completed = sum(1 for e in events
                                    if e.get("event") == "completed")
                    if completed >= 2:
                        break
                time.sleep(0.02)
            assert completed >= 2, "child made no durable progress"
            child.kill()  # SIGKILL: no handlers, no cleanup
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover
                child.kill()
                child.wait()

        (run_dir,) = list_runs(fingerprint=grid_fingerprint(pts))
        interrupted = summarize_events(read_run_events(run_dir))
        assert interrupted["status"] is None  # killed: no end trailer
        assert interrupted["missing"], "child must not have finished"

        report, journal = run_sweep(pts, _config(), progress=None,
                                    resume=True, fault_plan=FaultPlan())
        assert journal.run_dir == run_dir and journal.segment == 2
        # Bit-identical to an uninterrupted (serial, fault-free) run.
        ref = _ref_states(pts)
        assert len(report.results) == len(pts)
        for result in report:
            assert result.stats.state_dict() == ref[result.point.key()]
        # Exactly-once across the joined segments: the journal-completed
        # points replayed silently, everything else got one terminal.
        summary = summarize_events(read_run_events(run_dir))
        assert summary["total"] == len(pts)
        assert summary["completed"] == len(pts)
        assert summary["failed"] == 0
        assert summary["missing"] == [] and summary["duplicates"] == []
        assert summary["segments"] == 2 and summary["status"] == "ok"
        # Only non-completed points were re-entered.
        segment2 = read_events(journal.segment_path(2))
        rescheduled = {e["index"] for e in segment2
                       if e["event"] == "scheduled"}
        prior = {e["index"] for e in read_events(
            journal.segment_path(1)) if e["event"] == "completed"}
        assert not (rescheduled & prior)


# ----------------------------------------------------------------------
# Shard watchdog: pool deaths restart, repeated deaths degrade
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_dead_pool_restarts_and_requeues(self, cache_dir,
                                             fake_executor):
        pts = _points(8)
        plan = FaultPlan([Fault(SHARD_KILL, 0, times=2)])
        report, journal = run_sweep(pts, _config(), progress=None,
                                    fault_plan=plan)
        ref = _ref_states(pts)
        assert len(report.results) == len(pts)
        for result in report:
            assert result.stats.state_dict() == ref[result.point.key()]
        summary = summarize_events(read_run_events(journal.run_dir))
        assert summary["pool_restarts"] == 2
        assert summary["pool_retired"] == 0
        assert summary["requeued"] >= 1
        assert summary["missing"] == [] and summary["duplicates"] == []

    def test_repeated_deaths_retire_the_shard(self, cache_dir,
                                              fake_executor):
        pts = _points(8)
        plan = FaultPlan([Fault(SHARD_KILL, 0)])  # every incarnation
        report, journal = run_sweep(
            pts, _config(max_pool_restarts=1), progress=None,
            fault_plan=plan)
        assert len(report.results) == len(pts)  # degraded, not failed
        summary = summarize_events(read_run_events(journal.run_dir))
        assert summary["pool_restarts"] == 1
        assert summary["pool_retired"] == 1
        assert summary["missing"] == [] and summary["duplicates"] == []

    def test_no_surviving_pool_raises(self, cache_dir, fake_executor):
        pts = _points(4)
        plan = FaultPlan([Fault(SHARD_KILL, 0), Fault(SHARD_KILL, 1)])
        with pytest.raises(ShardDiedError):
            serve_sweep(pts, _config(max_pool_restarts=0),
                        progress=None, fault_plan=plan)

    def test_stalled_heartbeat_detected(self, cache_dir, fake_executor,
                                        monkeypatch):
        """A shard whose loop stops beating (here: wedged on a blocking
        call) is cancelled and requeued by the watchdog."""
        import repro.experiments.service as service_mod

        pts = _points(4)
        original = service_mod._shard_loop
        wedged = {"done": False}

        async def wedge_shard_zero(shard, incarnation, *args, **kw):
            if shard == 0 and not wedged["done"]:
                wedged["done"] = True
                import asyncio
                await asyncio.sleep(30.0)  # beats stop: loop never runs
            return await original(shard, incarnation, *args, **kw)

        monkeypatch.setattr(service_mod, "_shard_loop", wedge_shard_zero)
        report, journal = run_sweep(
            pts, _config(watchdog_timeout=0.2), progress=None,
            fault_plan=FaultPlan())
        assert len(report.results) == len(pts)
        summary = summarize_events(read_run_events(journal.run_dir))
        assert summary["pool_restarts"] >= 1
        assert summary["missing"] == [] and summary["duplicates"] == []

    def test_heartbeat_events_emitted(self, cache_dir, fake_executor):
        pts = _points(4)
        report, journal = run_sweep(
            pts, _config(heartbeat_interval=0.0001), progress=None,
            fault_plan=FaultPlan())
        summary = summarize_events(read_run_events(journal.run_dir))
        assert summary["heartbeats"] >= 1


# ----------------------------------------------------------------------
# Disk-space guard
# ----------------------------------------------------------------------
class TestDiskGuard:
    def test_write_refused_when_volume_nearly_full(self, cache_dir,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MIN_FREE", str(2**62))
        cache = diskcache.DiskCache(cache_dir / "guarded")
        seen = []
        diskcache.add_corruption_listener(seen.append)
        try:
            cache.put("k", {"schema": 1, "key": "k"})
        finally:
            diskcache._CORRUPTION_LISTENERS.remove(seen.append)
        assert cache.get("k") is None  # nothing was written
        assert len(cache) == 0
        assert cache.refused_writes == 1
        (error,) = seen
        assert isinstance(error, DiskFullError)
        assert error.free_bytes < error.needed_bytes

    def test_refusal_counts_separately_from_corruption(self, cache_dir,
                                                       monkeypatch):
        runner.reset_run_cache_stats()
        monkeypatch.setenv("REPRO_CACHE_MIN_FREE", str(2**62))
        diskcache.get_cache().put("k", {"schema": 1})
        stats = runner.run_cache_stats()
        assert stats.write_refusals == 1
        assert stats.cache_corrupt == 0

    def test_guard_disabled_with_zero_floor(self, cache_dir,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MIN_FREE", "0")
        cache = diskcache.get_cache()
        cache.put("k", {"schema": 1, "key": "k"})
        assert cache.get("k") == {"schema": 1, "key": "k"}

    def test_stats_report_free_space(self, cache_dir):
        stats = diskcache.get_cache().stats()
        assert stats["free_bytes"] is None or stats["free_bytes"] >= 0
        assert stats["min_free_bytes"] == \
            diskcache.DEFAULT_MIN_FREE_BYTES


# ----------------------------------------------------------------------
# Live tailing
# ----------------------------------------------------------------------
class TestFollow:
    def test_follow_sees_live_appends_and_stops_at_end(self, tmp_path):
        path = tmp_path / "live.jsonl"
        events = [{"seq": i, "event": "scheduled"} for i in range(1, 4)]
        events.append({"seq": 4, "event": "end"})

        def writer():
            with JsonlEventLog(path) as log:
                for event in events:
                    log(event)
                    time.sleep(0.02)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            seen = list(follow_events(path, poll=0.01, timeout=20.0))
        finally:
            thread.join()
        assert seen == events

    def test_follow_times_out_without_end(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text('{"seq": 1, "event": "begin"}\n')
        seen = list(follow_events(path, poll=0.01, timeout=0.05))
        assert seen == [{"seq": 1, "event": "begin"}]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_resume_requires_service_mode(self, capsys):
        assert main(["sweep", "mysql_sibench", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_resume_rejects_no_cache(self, tmp_path, capsys):
        manifest = tmp_path / "m.toml"
        manifest.write_text('[sweep]\nworkloads = ["mysql_sibench"]\n')
        assert main(["sweep", "--manifest", str(manifest),
                     "--resume", "--no-cache"]) == 2
        assert "disk cache" in capsys.readouterr().err

    def test_resume_without_prior_run_fails_cleanly(
            self, cache_dir, tmp_path, capsys):
        manifest = tmp_path / "m.toml"
        manifest.write_text('[sweep]\nworkloads = ["mysql_sibench"]\n'
                            'scale = "tiny"\n')
        assert main(["sweep", "--manifest", str(manifest),
                     "--resume"]) == 2
        assert "no resumable run" in capsys.readouterr().err

    def test_manifest_events_reads_run_directory(
            self, cache_dir, fake_executor, capsys):
        pts = _points(4)
        _report, journal = run_sweep(pts, _config(), progress=None,
                                     fault_plan=FaultPlan())
        assert main(["manifest", "events", str(journal.run_dir),
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "status:    ok" in out

    def test_events_check_fails_on_duplicates(self, tmp_path, capsys):
        stream = tmp_path / "dup.jsonl"
        with JsonlEventLog(stream) as log:
            log({"seq": 1, "event": "begin", "total": 1})
            log({"seq": 2, "event": "completed", "index": 0,
                 "source": "sim"})
            log({"seq": 3, "event": "completed", "index": 0,
                 "source": "sim"})
            log({"seq": 4, "event": "end", "status": "ok"})
        assert main(["manifest", "events", str(stream), "--check"]) == 1
        assert "DUPLICATE" in capsys.readouterr().out

    def test_manifest_events_follow(self, tmp_path, capsys):
        stream = tmp_path / "f.jsonl"
        with JsonlEventLog(stream) as log:
            log({"seq": 1, "event": "begin", "total": 0})
            log({"seq": 2, "event": "end", "status": "ok"})
        assert main(["manifest", "events", str(stream),
                     "--follow"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == \
            ["begin", "end"]

    def test_cache_info_shows_free_space(self, cache_dir, capsys):
        assert main(["cache", "info"]) == 0
        assert "free" in capsys.readouterr().out
