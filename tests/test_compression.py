"""Unit tests for SpatialRegion and the Compression Buffer."""

import pytest

from repro.core.compression import (
    REGION_BLOCKS,
    CompressionBuffer,
    SpatialRegion,
)


class TestSpatialRegion:
    def test_record_and_blocks_ordered(self):
        r = SpatialRegion(100)
        for b in (103, 100, 131, 110):
            r.record(b)
        assert list(r.blocks()) == [100, 103, 110, 131]

    def test_record_out_of_range(self):
        r = SpatialRegion(100)
        with pytest.raises(ValueError):
            r.record(99)
        with pytest.raises(ValueError):
            r.record(100 + REGION_BLOCKS)

    def test_covers(self):
        r = SpatialRegion(100)
        assert r.covers(100)
        assert r.covers(100 + REGION_BLOCKS - 1)
        assert not r.covers(99)
        assert not r.covers(100 + REGION_BLOCKS)

    def test_popcount(self):
        r = SpatialRegion(0)
        assert r.popcount() == 0
        r.record(0)
        r.record(5)
        assert r.popcount() == 2

    def test_copy_and_equality(self):
        r = SpatialRegion(7, 0b1010)
        c = r.copy()
        assert c == r and c is not r
        c.record(7)
        assert c != r


class TestCompressionBuffer:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CompressionBuffer(capacity=0)
        with pytest.raises(ValueError):
            CompressionBuffer(span=0)
        with pytest.raises(ValueError):
            CompressionBuffer(span=REGION_BLOCKS + 1)

    def test_coalesces_nearby_blocks(self):
        cb = CompressionBuffer(capacity=4, span=8)
        for b in (100, 101, 105, 100):
            cb.observe(b)
        regions = cb.snapshot()
        assert len(regions) == 1
        assert list(regions[0].blocks()) == [100, 101, 105]

    def test_block_below_base_opens_new_region(self):
        cb = CompressionBuffer(capacity=4, span=8)
        cb.observe(100)
        cb.observe(99)  # regions only extend upward from their base
        assert len(cb) == 2

    def test_fifo_eviction_to_sink(self):
        evicted = []
        cb = CompressionBuffer(capacity=2, sink=evicted.append, span=8)
        cb.observe(0)
        cb.observe(100)
        cb.observe(200)  # evicts region at base 0
        assert len(evicted) == 1
        assert evicted[0].base == 0

    def test_hit_in_older_region(self):
        evicted = []
        cb = CompressionBuffer(capacity=4, sink=evicted.append, span=8)
        cb.observe(0)
        cb.observe(100)
        cb.observe(3)  # back to the first region: no new entry
        assert len(cb) == 2
        assert not evicted
        assert cb.snapshot()[0].popcount() == 2

    def test_flush_drains_in_creation_order(self):
        out = []
        cb = CompressionBuffer(capacity=8, sink=out.append, span=8)
        for b in (0, 100, 200):
            cb.observe(b)
        cb.flush()
        assert [r.base for r in out] == [0, 100, 200]
        assert len(cb) == 0

    def test_clear_discards(self):
        out = []
        cb = CompressionBuffer(capacity=8, sink=out.append, span=8)
        cb.observe(0)
        cb.clear()
        assert not out and len(cb) == 0

    def test_span_limits_coalescing(self):
        cb = CompressionBuffer(capacity=8, span=4)
        cb.observe(0)
        cb.observe(3)
        cb.observe(4)  # outside the 4-block span -> new region
        assert len(cb) == 2

    def test_flush_without_sink_is_noop(self):
        cb = CompressionBuffer(capacity=4)
        cb.observe(0)
        cb.flush()
        assert len(cb) == 0
