"""Tests for the analysis package (metrics, Jaccard, reuse, reporting)."""

import pytest

from repro.analysis.footprints import (
    request_footprints,
    stage_footprints,
    stage_footprints_by_type,
)
from repro.analysis.jaccard import (
    bundle_similarity,
    jaccard,
    trigger_footprint_similarity,
)
from repro.analysis.longrange import (
    long_range_blocks,
    long_range_miss_elimination,
)
from repro.analysis.metrics import compare_run, latency_reduction, speedup
from repro.analysis.reporting import (
    format_percent,
    format_series,
    format_table,
    geomean,
)
from repro.analysis.reuse import StackDistanceTracker, block_reuse_distances
from repro.cpu import simulate
from tests.helpers import TraceAssembler


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0


class TestTriggerSimilarity:
    def test_unknown_model(self, micro_trace):
        with pytest.raises(KeyError, match="trigger model"):
            trigger_footprint_similarity(micro_trace, "ghost", 16)

    def test_repetitive_trace_high_similarity(self, micro_trace):
        sim = trigger_footprint_similarity(micro_trace, "eip", 16)
        assert 0.0 < sim <= 1.0

    def test_similarity_declines_with_footprint(self, micro_trace_long):
        # Figure 4's headline trend: deeper footprints diverge more.
        # (Checked on the EFetch trigger; on the tiny micro working set
        # MANA's region triggers saturate — the suite-scale benchmark
        # exercises the full curve.)
        small = trigger_footprint_similarity(micro_trace_long, "efetch", 16)
        large = trigger_footprint_similarity(micro_trace_long, "efetch", 256)
        assert large < small

    def test_all_models_run(self, micro_trace):
        for model in ("efetch", "mana", "eip"):
            value = trigger_footprint_similarity(micro_trace, model, 32)
            assert 0.0 <= value <= 1.0


class TestBundleSimilarity:
    def test_stats_present(self, micro_trace):
        stats = bundle_similarity(micro_trace)
        assert stats["distinct_bundles"] > 0
        assert stats["executions"] > 0
        assert 0.0 < stats["avg_jaccard"] <= 1.0
        assert stats["avg_footprint_kb"] > 0.0

    def test_high_bundle_stability(self, micro_trace_long):
        # The core empirical claim (Table 4): consecutive executions of
        # the same Bundle touch highly similar block sets.
        stats = bundle_similarity(micro_trace_long)
        assert stats["avg_jaccard"] > 0.5


class TestStackDistance:
    def test_first_access_is_minus_one(self):
        t = StackDistanceTracker(16)
        assert t.access(1) == -1

    def test_immediate_reuse_zero(self):
        t = StackDistanceTracker(16)
        t.access(1)
        assert t.access(1) == 0

    def test_counts_distinct_blocks(self):
        t = StackDistanceTracker(16)
        t.access(1)
        t.access(2)
        t.access(3)
        t.access(2)          # 1 distinct block (3) since last access
        assert t.access(1) == 2  # 2 distinct (2, 3)

    def test_repeats_not_double_counted(self):
        t = StackDistanceTracker(16)
        t.access(1)
        for _ in range(5):
            t.access(2)
        assert t.access(1) == 1

    def test_capacity_guard(self):
        t = StackDistanceTracker(2)
        t.access(1)
        t.access(2)
        with pytest.raises(RuntimeError):
            t.access(3)

    def test_block_reuse_distances(self):
        asm = TraceAssembler()
        asm.linear(0, 4, ninstr=16)
        asm.linear(0, 4, ninstr=16)
        trace = asm.build()
        distances = block_reuse_distances(trace)
        # Each of the 4 blocks reused once with 3 distinct interleaved.
        assert all(ds == [3] for ds in distances.values())


class TestLongRange:
    def test_fraction_validated(self, micro_trace):
        with pytest.raises(ValueError):
            long_range_blocks(micro_trace, fraction=0.0)

    def test_returns_blocks(self, micro_trace):
        blocks = long_range_blocks(micro_trace, fraction=0.2)
        assert blocks
        fp = micro_trace.footprint(0, len(micro_trace))
        assert blocks <= fp

    def test_elimination_math(self):
        blocks = {1, 2}
        base = {1: 10, 2: 10, 3: 99}
        pf = {1: 5, 2: 0, 3: 99}
        assert long_range_miss_elimination(base, pf, blocks) == 0.75

    def test_elimination_empty_baseline(self):
        assert long_range_miss_elimination({}, {}, {1}) == 0.0

    def test_elimination_clamped_nonnegative(self):
        assert long_range_miss_elimination({1: 1}, {1: 5}, {1}) == 0.0


class TestMetrics:
    def test_speedup(self, micro_trace):
        base = simulate(micro_trace)
        assert speedup(base, base) == 0.0

    def test_compare_run_fields(self, micro_trace, micro_cfg):
        from repro.core.prefetcher import HierarchicalPrefetcher

        base = simulate(micro_trace, config=micro_cfg)
        hp = simulate(micro_trace, config=micro_cfg,
                      prefetcher=HierarchicalPrefetcher())
        report = compare_run("hp", hp, base)
        assert report.name == "hp"
        assert -1.0 < report.speedup < 5.0
        assert 0.0 <= report.accuracy <= 1.0
        assert report.issued > 0
        assert len(report.row()) == 7

    def test_latency_reduction_self_zero(self, micro_trace):
        base = simulate(micro_trace)
        assert latency_reduction(base, base) == pytest.approx(0.0)


class TestFootprints:
    def test_stage_footprints(self, micro_trace):
        fps = stage_footprints(micro_trace)
        assert set(fps) == {"alpha", "beta"}
        assert all(v > 0 for v in fps.values())

    def test_by_type(self, micro_trace):
        fps = stage_footprints_by_type(micro_trace)
        assert "alpha" in fps
        assert all(v > 0 for d in fps.values() for v in d.values())

    def test_request_footprints(self, micro_trace):
        fps = request_footprints(micro_trace)
        assert len(fps) == len(micro_trace.requests)
        assert all(v > 0 for v in fps)


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.066) == "6.6%"
        assert format_percent(0.066, signed=True) == "+6.6%"

    def test_format_table_aligned(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("acc", [1, 2], [0.5, 0.25], y_fmt="{:.2f}")
        assert out == "acc: 1=0.50, 2=0.25"

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestCharts:
    def test_bar_chart_basic(self):
        from repro.analysis.charts import bar_chart

        out = bar_chart(["a", "bb"], [0.1, -0.05], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert "+10.0%" in lines[1]
        assert "-5.0%" in lines[2]

    def test_bar_chart_scales_to_peak(self):
        from repro.analysis.charts import bar_chart

        out = bar_chart(["x", "y"], [1.0, 0.5], width=10, fmt="{:.1f}")
        bars = [line.count("▇") for line in out.splitlines()]
        assert bars[0] == 10
        assert bars[1] == 5

    def test_bar_chart_mismatch(self):
        from repro.analysis.charts import bar_chart

        import pytest as _pytest
        with _pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        from repro.analysis.charts import bar_chart

        assert bar_chart([], [], title="t") == "t"

    def test_line_series(self):
        from repro.analysis.charts import line_series

        out = line_series([(0, 0.0), (1, 1.0), (2, 0.5)], height=4,
                          width=12)
        assert out.count("●") == 3

    def test_line_series_flat(self):
        from repro.analysis.charts import line_series

        out = line_series([(0, 1.0), (5, 1.0)])
        assert "●" in out
