"""Unit tests for the memory-hierarchy timing model."""

import pytest

from repro.cpu.stats import LEVEL_DRAM, LEVEL_L2, LEVEL_LLC, SimStats
from repro.memory.cache import ORIGIN_FDIP, ORIGIN_PF
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy


def make_hier(**kwargs):
    stats = SimStats()
    params = HierarchyParams(**kwargs)
    return MemoryHierarchy(params, stats), stats


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self):
        h, s = make_hier()
        stall = h.demand_fetch(100, now=0.0, commit_index=0)
        assert stall == h.params.lat_dram
        assert s.served_by[LEVEL_DRAM] == 1
        assert s.l1i_misses == 1
        assert s.l2_demand_misses == 1
        assert s.dram_read_bytes == 64

    def test_hit_after_fill(self):
        h, s = make_hier()
        h.demand_fetch(100, 0.0, 0)
        assert h.demand_fetch(100, 10.0, 1) == 0.0
        assert s.l1i_hits == 1

    def test_l2_hit_latency(self):
        h, s = make_hier(l1i_bytes=64 * 8)  # tiny L1: 8 blocks
        h.demand_fetch(100, 0.0, 0)
        # Evict 100 from L1 by filling its set (same set every 8 blocks
        # with 1 set... tiny L1 has 1 set, 8 ways).
        for b in range(8):
            h.demand_fetch(200 + b, 0.0, 0)
        stall = h.demand_fetch(100, 50.0, 1)
        assert stall == h.params.lat_l2
        assert s.served_by[LEVEL_L2] >= 1

    def test_llc_hit_latency(self):
        h, s = make_hier(l1i_bytes=64 * 8, l2_bytes=64 * 16 * 8)
        h.demand_fetch(100, 0.0, 0)
        # Push 100 out of L1 and L2 with many fills.
        for b in range(300, 300 + 200):
            h.demand_fetch(b, 0.0, 0)
        stall = h.demand_fetch(100, 1e6, 1)
        assert stall == h.params.lat_llc
        assert s.served_by[LEVEL_LLC] >= 1

    def test_perfect_l1i_never_stalls(self):
        h, s = make_hier(perfect_l1i=True)
        assert h.demand_fetch(1, 0.0, 0) == 0.0
        assert s.l1i_misses == 0


class TestPrefetchPath:
    def test_prefetch_fills_after_latency(self):
        h, s = make_hier()
        assert h.prefetch(100, 0.0, ORIGIN_PF)
        assert h.in_flight(100)
        h.drain(h.params.lat_dram + 1.0)
        assert not h.in_flight(100)
        assert h.in_l1i(100)
        assert s.pf_issued[ORIGIN_PF] == 1

    def test_timely_prefetch_covers_demand(self):
        h, s = make_hier()
        h.prefetch(100, 0.0, ORIGIN_PF)
        stall = h.demand_fetch(100, h.params.lat_dram + 5.0, 3)
        assert stall == 0.0
        assert s.covered[ORIGIN_PF] == 1
        assert s.pf_useful[ORIGIN_PF] == 1
        assert s.pf_late[ORIGIN_PF] == 0

    def test_late_prefetch_partial_stall(self):
        h, s = make_hier()
        h.prefetch(100, 0.0, ORIGIN_PF)
        stall = h.demand_fetch(100, 100.0, 1)
        assert stall == pytest.approx(h.params.lat_dram - 100.0)
        assert s.pf_late[ORIGIN_PF] == 1
        assert s.l1i_misses == 1  # an MSHR hit still counts as a miss

    def test_redundant_prefetch_filtered(self):
        h, s = make_hier()
        h.demand_fetch(100, 0.0, 0)
        assert not h.prefetch(100, 1.0, ORIGIN_PF)
        assert s.pf_redundant[ORIGIN_PF] == 1
        h.prefetch(200, 1.0, ORIGIN_PF)
        assert not h.prefetch(200, 1.0, ORIGIN_PF)  # already in flight
        assert s.pf_redundant[ORIGIN_PF] == 2

    def test_mshr_limit_queues(self):
        h, s = make_hier(pf_mshrs=2)
        for b in range(5):
            h.prefetch(1000 + b, 0.0, ORIGIN_PF)
        assert h.inflight_count() == 2
        assert h.pending_count() == 3
        h.drain(h.params.lat_dram + 1)
        assert h.inflight_count() == 2  # next two issued

    def test_queue_capacity_drops(self):
        h, s = make_hier(pf_mshrs=1, pf_queue=2)
        for b in range(6):
            h.prefetch(1000 + b, 0.0, ORIGIN_PF)
        assert s.pf_dropped[ORIGIN_PF] > 0

    def test_useless_prefetch_counted_on_eviction(self):
        h, s = make_hier(l1i_bytes=64 * 8)  # 1 set, 8 ways
        h.prefetch(100, 0.0, ORIGIN_PF)
        h.drain(h.params.lat_dram + 1)
        for b in range(200, 209):  # evict everything
            h.demand_fetch(b, 1e5, 0)
        assert s.pf_useless[ORIGIN_PF] == 1

    def test_prefetch_to_l2(self):
        h, s = make_hier()
        h.prefetch(100, 0.0, ORIGIN_PF, to_l2=True)
        h.drain(h.params.lat_dram + 1)
        assert not h.in_l1i(100)
        assert h.l2.peek(100) is not None
        stall = h.demand_fetch(100, 1e5, 1)
        assert stall == h.params.lat_l2
        assert s.covered_l2[ORIGIN_PF] == 1

    def test_distance_uses_access_clock(self):
        h, s = make_hier()
        for b in range(10):  # advance the access clock
            h.demand_fetch(b, 0.0, b)
        h.prefetch(100, 0.0, ORIGIN_PF)
        for b in range(10, 15):
            h.demand_fetch(b, 1e4, b)
        h.demand_fetch(100, 1e4, 15)
        assert s.distance_n[ORIGIN_PF] == 1
        # 5 demand accesses between issue and use, +1 for the use itself.
        assert s.distance_sum[ORIGIN_PF] == 6

    def test_extra_latency_delays_fill(self):
        h, _ = make_hier()
        h.prefetch(100, 0.0, ORIGIN_PF, extra_latency=100.0)
        h.drain(h.params.lat_dram + 50.0)
        assert h.in_flight(100)
        h.drain(h.params.lat_dram + 101.0)
        assert h.in_l1i(100)


class TestMetadataTraffic:
    def test_read_miss_hits_dram_then_llc(self):
        h, s = make_hier()
        lat1 = h.metadata_read(0, 6, 0.0)
        assert lat1 == h.params.lat_dram
        lat2 = h.metadata_read(0, 6, 10.0)
        assert lat2 == h.params.lat_llc
        assert s.metadata_read_bytes == 2 * 6 * 64

    def test_write_marks_dirty_and_writes_back(self):
        h, s = make_hier(llc_bytes=64 * 16 * 2)  # tiny LLC: 32 blocks
        h.metadata_write(0, 2, 0.0)
        assert s.metadata_write_bytes == 2 * 64
        # Flood the LLC with demand fills to force dirty eviction.
        for b in range(1000, 1200):
            h.demand_fetch(b, 0.0, 0)
        assert s.dram_write_bytes >= 2 * 64

    def test_fdip_and_pf_accounted_separately(self):
        h, s = make_hier()
        h.prefetch(100, 0.0, ORIGIN_FDIP)
        h.prefetch(200, 0.0, ORIGIN_PF)
        assert s.pf_issued[ORIGIN_FDIP] == 1
        assert s.pf_issued[ORIGIN_PF] == 1


class TestUncoreTraffic:
    def test_demand_beyond_l2_counts(self):
        h, s = make_hier()
        h.demand_fetch(100, 0.0, 0)  # DRAM fill
        assert s.uncore_fill_bytes == 64
        h.demand_fetch(100, 1.0, 1)  # L1 hit: no traffic
        assert s.uncore_fill_bytes == 64

    def test_l2_hit_adds_no_uncore_traffic(self):
        h, s = make_hier(l1i_bytes=64 * 8)
        h.demand_fetch(100, 0.0, 0)
        before = s.uncore_fill_bytes
        for b in range(200, 208):
            h.demand_fetch(b, 0.0, 0)
        h.demand_fetch(100, 1e4, 1)  # served by L2
        after = s.uncore_fill_bytes
        assert after - before == 8 * 64  # only the eviction refills

    def test_prefetch_from_llc_counts(self):
        h, s = make_hier()
        h.demand_fetch(100, 0.0, 0)
        h.l1i.invalidate(100)
        h.l2.invalidate(100)
        before = s.uncore_fill_bytes
        h.prefetch(100, 10.0, ORIGIN_PF)  # sourced from the LLC
        assert s.uncore_fill_bytes - before == 64

    def test_memory_traffic_includes_metadata(self):
        h, s = make_hier()
        h.metadata_write(0, 2, 0.0)
        assert s.memory_traffic_bytes >= s.metadata_bytes > 0


class TestPolicyPlumbing:
    def test_every_level_gets_the_configured_policy(self):
        h, _ = make_hier(policy="pf_aware")
        assert h.l1i.policy.name == "pf_aware"
        assert h.l2.policy.name == "pf_aware"
        assert h.llc.policy.name == "pf_aware"
        # Policy instances are per-cache, never shared across levels.
        assert h.l1i.policy is not h.l2.policy

    def test_default_policy_is_lru(self):
        h, _ = make_hier()
        assert h.l1i.policy.name == "lru"

    def test_pf_aware_evicts_unused_prefetch_first(self):
        h, s = make_hier(l1i_bytes=64 * 8, policy="pf_aware")  # 1 set
        h.prefetch(100, 0.0, ORIGIN_PF)
        h.drain(h.params.lat_dram + 1)
        # 7 demand fills leave the set full; the unused prefetched
        # block is the preferred victim on the 8th, not the LRU demand
        # block.
        for b in range(200, 207):
            h.demand_fetch(b, 1e4, 0)
        assert h.in_l1i(100)
        h.demand_fetch(207, 1e4, 0)
        assert not h.in_l1i(100)
        assert h.in_l1i(200)
        assert s.pf_useless[ORIGIN_PF] == 1
        assert s.unused_prefetch_evictions == 1

    def test_pf_aware_protects_demand_touched_prefetch(self):
        h, s = make_hier(l1i_bytes=64 * 8, policy="pf_aware")
        h.prefetch(100, 0.0, ORIGIN_PF)
        h.prefetch(300, 0.0, ORIGIN_PF)
        h.drain(h.params.lat_dram + 1)
        h.demand_fetch(100, 1e4, 1)  # first touch promotes + marks used
        # Fill the set; the forced eviction demotes the still-unused
        # 300, not the demand-touched 100 (which sits deeper in LRU).
        for b in range(200, 207):
            h.demand_fetch(b, 1e4, 0)
        assert h.in_l1i(100)
        assert not h.in_l1i(300)
        assert s.unused_prefetch_evictions == 1

    def test_split_hit_counters(self):
        h, s = make_hier()
        h.prefetch(100, 0.0, ORIGIN_FDIP)
        h.demand_fetch(200, 0.0, 0)
        h.demand_fetch(100, 1e4, 1)  # hit on a prefetched block
        h.demand_fetch(200, 1e4, 2)  # hit on a demand block
        assert s.l1i_prefetch_hits == 1
        assert s.l1i_demand_hits == 1
        assert s.l1i_hits == 2
