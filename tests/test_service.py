"""The sharded sweep service (docs/SWEEP_SERVICE.md).

Contracts under test:

* service sweeps are bit-identical to a serial ``sweep()`` of the same
  points (real worker processes and the inline thread path alike);
* the WorkUnit/WorkOutcome protocol round-trips through its flat spec
  form (the remote-worker seam);
* the JSONL progress stream accounts for every point — scheduled,
  completed (cache hits included), retried, failed;
* the PR-4 retry/backoff/keep-going semantics ride along unchanged;
* the ISSUE acceptance grid: a 1,200-point manifest completes through
  the service under injected crash/hang/truncate faults, survivors
  bit-identical to the fault-free serial run.
"""

import hashlib
import importlib
import json

import pytest

from repro.cpu.stats import SimStats
from repro.experiments import diskcache, runner
from repro.experiments.errors import PointFailure
from repro.experiments.faults import CRASH, ERROR, HANG, Fault, FaultPlan
from repro.experiments.manifest import parse_manifest
from repro.experiments.service import (
    JsonlEventLog,
    ServiceConfig,
    WorkOutcome,
    WorkUnit,
    format_events_summary,
    read_events,
    serve_sweep,
    summarize_events,
)
from repro.experiments.sweep import SweepPoint, sweep

sweep_mod = importlib.import_module("repro.experiments.sweep")

WORKLOAD = "mysql_sibench"


@pytest.fixture()
def cache_dir(tmp_path):
    """A private disk-cache root for one test, restored afterwards."""
    previous = diskcache.set_cache_dir(tmp_path)
    runner.clear_run_cache()
    runner.reset_run_cache_stats()
    yield tmp_path
    runner.clear_run_cache()
    diskcache.set_cache_dir(previous)


def _points():
    return [SweepPoint(WORKLOAD, None, scale="tiny"),
            SweepPoint(WORKLOAD, "eip", scale="tiny")]


def _states(report):
    return [r.stats.state_dict() for r in report]


_CLEAN = None


def _clean_states():
    """Fault-free serial reference states (computed once)."""
    global _CLEAN
    if _CLEAN is None:
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=FaultPlan())
        assert report.ok
        _CLEAN = _states(report)
    return _CLEAN


# ----------------------------------------------------------------------
# Protocol round-trips
# ----------------------------------------------------------------------
class TestProtocol:
    def test_work_unit_spec_round_trip(self):
        unit = WorkUnit(3, 2, SweepPoint(WORKLOAD, "eip", scale="tiny",
                                         seed=7))
        spec = json.loads(json.dumps(unit.to_spec()))
        again = WorkUnit.from_spec(spec)
        assert again == unit
        assert again.point.key() == unit.point.key()

    def test_work_outcome_spec_round_trip(self):
        for outcome in (
            WorkOutcome(0, 1, "ok", stats_state={"instructions": 5},
                        source="sim", seconds=1.5),
            WorkOutcome(1, 2, "crash", exitcode=73, message="died"),
            WorkOutcome(2, 3, "timeout", timeout=10.0, message="slow"),
            WorkOutcome(3, 1, "transient", message="flaky"),
        ):
            spec = json.loads(json.dumps(outcome.to_spec()))
            assert WorkOutcome.from_spec(spec) == outcome

    def test_outcome_errors_follow_taxonomy(self):
        from repro.experiments.errors import (
            PointTimeoutError,
            TransientError,
            WorkerCrashError,
        )

        assert isinstance(WorkOutcome(0, 1, "crash").to_error("x"),
                          WorkerCrashError)
        assert isinstance(WorkOutcome(0, 1, "timeout").to_error("x"),
                          PointTimeoutError)
        assert isinstance(WorkOutcome(0, 1, "transient").to_error("x"),
                          TransientError)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(shards=0)
        with pytest.raises(ValueError):
            ServiceConfig(jobs=0)


# ----------------------------------------------------------------------
# Bit-identity with the serial engine (real simulations)
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_process_mode_matches_serial(self, cache_dir, tmp_path):
        events = tmp_path / "events.jsonl"
        with JsonlEventLog(events) as log:
            report = serve_sweep(
                _points(),
                ServiceConfig(shards=2, jobs=1, use_cache=False),
                events=log, progress=None, fault_plan=FaultPlan())
        assert report.ok
        assert _states(report) == _clean_states()
        summary = summarize_events(read_events(events))
        assert summary["total"] == 2
        assert summary["completed"] == 2 and summary["missing"] == []
        assert summary["scheduled"] == 2

    def test_crash_fault_retried_bit_identical(self, cache_dir, tmp_path):
        events = tmp_path / "events.jsonl"
        plan = FaultPlan([Fault(CRASH, f"{WORKLOAD}/eip", times=1)])
        with JsonlEventLog(events) as log:
            report = serve_sweep(
                _points(),
                ServiceConfig(shards=2, jobs=1, use_cache=False),
                events=log, progress=None, fault_plan=plan)
        assert report.ok
        assert _states(report) == _clean_states()
        summary = summarize_events(read_events(events))
        assert summary["retried"] == 1
        assert summary["retry_kinds"] == {"crash": 1}

    def test_warm_points_resolve_without_scheduling(self, cache_dir,
                                                    tmp_path):
        sweep(_points(), progress=None, fault_plan=FaultPlan())
        runner.clear_run_cache()  # drop memory layer; keep disk
        events = tmp_path / "events.jsonl"
        with JsonlEventLog(events) as log:
            report = serve_sweep(_points(), ServiceConfig(shards=2),
                                 events=log, progress=None,
                                 fault_plan=FaultPlan())
        assert report.ok
        assert _states(report) == _clean_states()
        raw = read_events(events)
        assert all(e["event"] != "scheduled" for e in raw)
        completed = [e for e in raw if e["event"] == "completed"]
        assert {e["source"] for e in completed} == {"disk"}
        assert all(e["shard"] is None for e in completed)

    def test_fail_fast_raises_point_failure(self, cache_dir):
        plan = FaultPlan([Fault(ERROR, f"{WORKLOAD}/eip")])  # persistent
        with pytest.raises(PointFailure) as exc:
            serve_sweep(_points(),
                        ServiceConfig(shards=2, jobs=1, use_cache=False,
                                      max_retries=0, backoff_base=0.0),
                        progress=None, fault_plan=plan)
        assert exc.value.kind == "transient"


# ----------------------------------------------------------------------
# Event stream mechanics
# ----------------------------------------------------------------------
class TestEvents:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"event": "begin", "total": 1}\n{"event": "co')
        assert read_events(path) == [{"event": "begin", "total": 1}]

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"event": "b\n{"event": "end"}\n')
        with pytest.raises(ValueError, match="undecodable"):
            read_events(path)

    def test_missing_points_detected(self):
        summary = summarize_events([
            {"event": "begin", "total": 3},
            {"event": "completed", "index": 0, "source": "sim"},
            {"event": "failed", "index": 2, "kind": "timeout",
             "label": "x", "message": "m"},
        ])
        assert summary["missing"] == [1]
        assert summary["completed"] == 1 and summary["failed"] == 1
        assert "MISSING" in format_events_summary(summary)

    def test_unknown_kind_counted_not_fatal(self):
        # A v3 writer's stream: the extra kind must be tallied for
        # visibility, never crash the v2 reader or skew accounting.
        summary = summarize_events([
            {"event": "begin", "total": 1},
            {"event": "speculative", "index": 0, "depth": 4},
            {"event": "completed", "index": 0, "source": "sim"},
            {"event": "speculative", "index": 0, "depth": 5},
            {"event": "end", "status": "ok"},
        ])
        assert summary["unknown"] == {"speculative": 2}
        assert summary["completed"] == 1
        assert summary["missing"] == [] and summary["duplicates"] == []
        text = format_events_summary(summary)
        assert "unknown:   2 speculative" in text
        assert "ignored" in text

    def test_unknown_kind_does_not_fail_check(self, tmp_path, capsys):
        from repro.cli import main
        stream = tmp_path / "v3.jsonl"
        with JsonlEventLog(stream) as log:
            log({"event": "begin", "total": 1})
            log({"event": "speculative", "index": 0})
            log({"event": "completed", "index": 0, "source": "sim"})
            log({"event": "end", "status": "ok"})
        assert main(["manifest", "events", str(stream),
                     "--check"]) == 0
        assert "unknown:" in capsys.readouterr().out

    def test_missing_optional_keys_tolerated(self):
        # Optional envelope/schema keys absent everywhere: summarize
        # must fall back, not KeyError.
        summary = summarize_events([
            {"event": "begin", "total": 2},        # no run_id/segment
            {"event": "completed", "index": 0},    # no source/seconds
            {"event": "retried", "index": 1},      # no kind
            {"event": "failed", "index": 1},       # no label/message
            {"event": "end", "status": "failed"},  # no seconds
        ])
        assert summary["sources"] == {"sim": 1}
        assert summary["retry_kinds"] == {"transient": 1}
        assert summary["failures"] == [
            {"index": 1, "label": None, "kind": None, "message": None}]
        assert summary["seconds"] is None
        # Renders without a wall-clock line or a crash.
        assert "wall:" not in format_events_summary(summary)

    def test_empty_stream_summarizes(self, tmp_path):
        stream = tmp_path / "empty.jsonl"
        stream.write_text("")
        events = read_events(stream)
        assert events == []
        summary = summarize_events(events)
        assert summary["total"] == 0
        assert summary["missing"] == [] and summary["status"] is None
        assert "points:    0" in format_events_summary(summary)

    def test_read_run_events_joins_adversarial_segments(self, tmp_path):
        from repro.experiments.journal import read_run_events
        # Segment 1: duplicate seq (writer re-append) + torn tail.
        (tmp_path / "events-0001.jsonl").write_text(
            '{"seq": 1, "event": "begin", "total": 2}\n'
            '{"seq": 2, "event": "completed", "index": 0}\n'
            '{"seq": 2, "event": "completed", "index": 0}\n'
            '{"seq": 3, "event": "inter')
        # Segment 2: the resume attempt, with its own seq space.
        (tmp_path / "events-0002.jsonl").write_text(
            '{"seq": 1, "event": "begin", "total": 2}\n'
            '{"seq": 2, "event": "completed", "index": 1}\n'
            '{"seq": 3, "event": "end", "status": "ok"}\n')
        events = read_run_events(tmp_path)
        assert [e["event"] for e in events] == [
            "begin", "completed", "begin", "completed", "end"]
        summary = summarize_events(events)
        assert summary["segments"] == 2
        assert summary["completed"] == 2
        assert summary["missing"] == [] and summary["duplicates"] == []

    def test_sink_exceptions_never_break_the_sweep(self, cache_dir):
        def exploding_sink(event):
            raise RuntimeError("sink down")

        report = serve_sweep(
            _points(), ServiceConfig(shards=1, jobs=1, use_cache=False),
            events=exploding_sink, progress=None, fault_plan=FaultPlan())
        assert report.ok


# ----------------------------------------------------------------------
# The 1,200-point acceptance grid (fake executor: the scheduler,
# retry engine, cache layers, and event stream are all real — only the
# simulation itself is synthesized, deterministically per point key)
# ----------------------------------------------------------------------
def _fake_run_serial(point, use_cache):
    digest = hashlib.sha256(point.key().encode("utf-8")).hexdigest()
    stats = SimStats()
    stats.instructions = int(digest[:12], 16)
    stats.blocks = int(digest[12:20], 16)
    stats.cycles = float(int(digest[20:28], 16) % 99991) + 1.0
    if use_cache:
        runner.seed_cache(point.key(), stats, None)
        runner._disk_store(point.key(), stats, None)
    return stats, None, "sim", 0.001


def _acceptance_manifest():
    from repro.workloads.suite import ALL_WORKLOAD_NAMES

    return parse_manifest({"sweep": {
        "name": "acceptance",
        "workloads": list(ALL_WORKLOAD_NAMES),
        "prefetchers": ["efetch", "mana", "eip", "hierarchical"],
        "policies": ["lru", "lip", "bip", "pf_aware"],
        "seeds": [1, 2, 3, 4],
        "scale": "tiny",
    }})


class TestAcceptanceScale:
    def test_thousand_point_manifest_through_the_service(
            self, cache_dir, tmp_path, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_run_serial", _fake_run_serial)
        manifest = _acceptance_manifest()
        points = manifest.expand()
        assert len(points) == 1200

        # Fault-free serial reference (the bit-identity baseline).
        reference = sweep(points, use_cache=False, progress=None,
                          fault_plan=FaultPlan())
        assert reference.ok
        ref = {r.point.key(): r.stats.state_dict() for r in reference}
        assert len(ref) == 1200

        # Crash, hang, transient, and truncate faults sprinkled over
        # the grid, plus one persistent hang that must fail.
        plan = FaultPlan([
            Fault(CRASH, 0, times=1),
            Fault(CRASH, 451, times=1),
            Fault(ERROR, 17, times=1),
            Fault(HANG, 123, times=1),
            Fault("truncate", 777, times=1),
            Fault("truncate", 778, times=1),
            Fault(HANG, 999),  # persistent: every attempt hangs
        ])
        events = tmp_path / "acceptance.jsonl"
        with JsonlEventLog(events) as log:
            report = serve_sweep(
                points,
                ServiceConfig(shards=4, jobs=8, inline=True,
                              keep_going=True, backoff_base=0.0),
                events=log, progress=None, fault_plan=plan)

        # Survivors: everything except the persistently hung point,
        # each bit-identical to the fault-free serial run.
        assert len(report) == 1199
        for result in report:
            assert result.stats.state_dict() == ref[result.point.key()], \
                result.point.key()
        (failure,) = report.failures
        assert failure.kind == "timeout" and failure.index == 999

        # The stream accounts for every one of the 1200 points.
        summary = summarize_events(read_events(events))
        assert summary["total"] == 1200
        assert summary["completed"] == 1199
        assert summary["failed"] == 1 and summary["missing"] == []
        # 4 flaky exec faults retried once each + 2 retries of the
        # persistent hang (attempts 1 and 2 re-enter; attempt 3 fails).
        assert summary["retried"] == 6
        assert summary["retry_kinds"]["timeout"] == 3

        # Warm re-run: the torn entries must be quarantined and
        # re-simulated; everything else resolves from the disk cache.
        runner.clear_run_cache()  # memory layer only; disk survives
        runner.reset_run_cache_stats()
        events2 = tmp_path / "warm.jsonl"
        with JsonlEventLog(events2) as log:
            again = serve_sweep(
                points,
                ServiceConfig(shards=4, jobs=8, inline=True,
                              keep_going=True, backoff_base=0.0),
                events=log, progress=None, fault_plan=FaultPlan())
        assert again.ok and len(again) == 1200
        for result in again:
            assert result.stats.state_dict() == ref[result.point.key()]
        summary2 = summarize_events(read_events(events2))
        assert summary2["completed"] == 1200 and summary2["missing"] == []
        # 1197 disk hits; 777/778 (torn) + 999 (never cached) re-ran.
        assert summary2["sources"]["disk"] == 1197
        assert summary2["sources"]["sim"] == 3
        assert runner.run_cache_stats().cache_corrupt == 2
