"""Additional coverage: tag propagation from linker through trace to HP.

These tests walk the full software path on the micro application:
Algorithm 1 entries -> tagged instruction addresses -> tagged trace
records -> Bundle IDs the hardware computes.
"""

from collections import Counter

from repro.isa.instructions import BranchKind
from repro.isa.loader import bundle_id_of


class TestTagPropagation:
    def test_every_tagged_record_is_a_linker_tag(self, micro_app,
                                                 micro_trace):
        tagged_addrs = micro_app.program.tagged
        for i in range(len(micro_trace)):
            if micro_trace.tagged[i]:
                term = micro_trace.terminator_addr(i)
                assert term in tagged_addrs

    def test_tagged_calls_target_entry_functions(self, micro_app,
                                                 micro_trace):
        entries = {
            micro_app.binary.get(name).addr
            for name in micro_app.program.link_result.entry_addrs
        }
        # Direct calls only: a tagged indirect call site may still pick
        # a non-entry target at runtime (e.g. a stage's skip stub).
        checked = 0
        for i in range(len(micro_trace)):
            if (micro_trace.tagged[i]
                    and micro_trace.kind[i] == int(BranchKind.CALL)):
                assert micro_trace.target[i] in entries
                checked += 1
        if checked == 0:
            import pytest

            pytest.skip("micro app has no tagged direct calls")

    def test_bundle_ids_recur(self, micro_trace):
        """The same Bundle entry must recur many times — the premise of
        record-and-replay."""
        ids = Counter()
        for i in range(len(micro_trace)):
            if micro_trace.tagged[i]:
                ids[bundle_id_of(micro_trace.target[i])] += 1
        assert ids
        most_common = ids.most_common(1)[0][1]
        assert most_common >= 5

    def test_distinct_bundles_bounded_by_entries(self, micro_app,
                                                 micro_trace):
        ids = set()
        for i in range(len(micro_trace)):
            if micro_trace.tagged[i]:
                ids.add(bundle_id_of(micro_trace.target[i]))
        # Dynamic Bundle IDs: call targets (bounded by entries) plus
        # return-continuation addresses (bounded by tagged call sites).
        upper = len(micro_app.program.tagged) + micro_app.program.n_bundles
        assert 0 < len(ids) <= upper

    def test_untagged_calls_exist(self, micro_trace):
        """Most calls are *not* Bundle boundaries (minor calls stay
        inside their Bundle)."""
        call_kinds = {int(BranchKind.CALL), int(BranchKind.ICALL)}
        tagged = untagged = 0
        for i in range(len(micro_trace)):
            if micro_trace.kind[i] in call_kinds:
                if micro_trace.tagged[i]:
                    tagged += 1
                else:
                    untagged += 1
        assert untagged > tagged
