"""Unit tests for the ISA constants and address helpers."""

import pytest

from repro.isa.instructions import (
    BranchKind,
    CALL_KINDS,
    INDIRECT_KINDS,
    block_addr,
    block_of,
    blocks_spanned,
    page_of,
)


class TestAddressHelpers:
    def test_block_of_start_of_block(self):
        assert block_of(0) == 0
        assert block_of(64) == 1
        assert block_of(0x400000) == 0x400000 >> 6

    def test_block_of_within_block(self):
        assert block_of(63) == 0
        assert block_of(65) == 1

    def test_block_addr_roundtrip(self):
        for addr in (0, 64, 0x400040, 0x7FFFC0):
            assert block_addr(block_of(addr)) <= addr
            assert addr - block_addr(block_of(addr)) < 64

    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(4095) == 0
        assert page_of(4096) == 1

    def test_blocks_spanned_single(self):
        assert list(blocks_spanned(0, 64)) == [0]
        assert list(blocks_spanned(0, 1)) == [0]

    def test_blocks_spanned_crossing(self):
        assert list(blocks_spanned(60, 8)) == [0, 1]

    def test_blocks_spanned_exact_boundary(self):
        # Last byte at offset 63 stays in block 0.
        assert list(blocks_spanned(32, 32)) == [0]
        assert list(blocks_spanned(32, 33)) == [0, 1]

    def test_blocks_spanned_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            blocks_spanned(0, 0)
        with pytest.raises(ValueError):
            blocks_spanned(0, -4)


class TestBranchKinds:
    def test_call_kinds(self):
        assert BranchKind.CALL in CALL_KINDS
        assert BranchKind.ICALL in CALL_KINDS
        assert BranchKind.RET not in CALL_KINDS
        assert BranchKind.JUMP not in CALL_KINDS

    def test_indirect_kinds(self):
        assert BranchKind.ICALL in INDIRECT_KINDS
        assert BranchKind.IJUMP in INDIRECT_KINDS
        assert BranchKind.CALL not in INDIRECT_KINDS

    def test_kind_values_are_stable(self):
        # The trace encodes kinds as raw ints; the mapping is part of
        # the on-disk/api contract.
        assert int(BranchKind.NONE) == 0
        assert int(BranchKind.COND) == 1
        assert int(BranchKind.JUMP) == 2
        assert int(BranchKind.CALL) == 3
        assert int(BranchKind.RET) == 4
        assert int(BranchKind.ICALL) == 5
        assert int(BranchKind.IJUMP) == 6
