"""Hand-built trace assembly for deterministic unit tests."""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import BranchKind
from repro.workloads.trace import Trace

_FALLTHROUGH_KINDS = (BranchKind.NONE, BranchKind.COND)


class TraceAssembler:
    """Builds a consistent Trace record by record.

    Each ``add`` appends one basic block; ``target`` defaults to the
    fall-through address.  The assembler checks nothing clever — it just
    keeps pc/target bookkeeping consistent so simulator tests stay
    readable.
    """

    def __init__(self) -> None:
        self.trace = Trace()

    def add(
        self,
        pc: int,
        ninstr: int = 4,
        kind=BranchKind.NONE,
        taken: bool = False,
        target: Optional[int] = None,
        tagged: bool = False,
    ) -> "TraceAssembler":
        if isinstance(kind, str):
            kind = BranchKind[kind]
        if target is None:
            target = pc + ninstr * 4
        t = self.trace
        t.pc.append(pc)
        t.ninstr.append(ninstr)
        t.kind.append(int(kind))
        t.taken.append(1 if taken else 0)
        t.target.append(target)
        t.tagged.append(1 if tagged else 0)
        t.n_instructions += ninstr
        return self

    def linear(self, start: int, n_blocks: int, ninstr: int = 4
               ) -> "TraceAssembler":
        """Append ``n_blocks`` sequential fall-through blocks."""
        pc = start
        for _ in range(n_blocks):
            self.add(pc, ninstr)
            pc += ninstr * 4
        return self

    def loop_over(self, start: int, n_blocks: int, repeats: int,
                  ninstr: int = 4) -> "TraceAssembler":
        """Append ``repeats`` passes over the same block sequence."""
        for _ in range(repeats):
            pc = start
            for b in range(n_blocks):
                last = b == n_blocks - 1
                if last:
                    self.add(pc, ninstr, BranchKind.JUMP, taken=True,
                             target=start)
                else:
                    self.add(pc, ninstr)
                pc += ninstr * 4
        return self

    def build(self) -> Trace:
        if not self.trace.requests:
            self.trace.requests.append((0, 0))
        return self.trace


def linear_trace(n_blocks: int = 64, start: int = 0x400000,
                 ninstr: int = 4) -> Trace:
    return TraceAssembler().linear(start, n_blocks, ninstr).build()


def looping_trace(n_blocks: int = 32, repeats: int = 8,
                  start: int = 0x400000) -> Trace:
    return TraceAssembler().loop_over(start, n_blocks, repeats).build()
