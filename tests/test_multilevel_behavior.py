"""Cross-level behavioural tests: inclusive fills, eviction interplay,
and the fetch-slack contract of the timing model."""


from repro.cpu import MachineConfig, simulate
from repro.cpu.stats import SimStats
from repro.memory.cache import ORIGIN_PF
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from tests.helpers import TraceAssembler


class TestInclusiveFills:
    def test_demand_dram_fill_populates_all_levels(self):
        h = MemoryHierarchy(HierarchyParams(), SimStats())
        h.demand_fetch(100, 0.0, 0)
        assert h.l1i.peek(100) is not None
        assert h.l2.peek(100) is not None
        assert h.llc.peek(100) is not None

    def test_prefetch_fill_populates_l2(self):
        h = MemoryHierarchy(HierarchyParams(), SimStats())
        h.prefetch(100, 0.0, ORIGIN_PF)
        # L2/LLC are filled at issue; the L1 copy lands on completion.
        assert h.l2.peek(100) is not None
        assert h.llc.peek(100) is not None

    def test_demand_after_l1_eviction_hits_l2(self):
        stats = SimStats()
        h = MemoryHierarchy(HierarchyParams(l1i_bytes=64 * 8), stats)
        h.demand_fetch(100, 0.0, 0)
        for b in range(200, 208):
            h.demand_fetch(b, 0.0, 0)
        assert h.l1i.peek(100) is None
        stall = h.demand_fetch(100, 1e5, 1)
        assert stall == h.params.lat_l2


class TestFetchSlackContract:
    def _one_miss_trace(self):
        # Warm blocks, then one far-away block = exactly one L1 miss.
        asm = TraceAssembler()
        asm.linear(0x400000, 4, ninstr=16)
        asm.add(0x900000, 16)
        return asm.build()

    def test_slack_absorbs_small_latency(self):
        trace = self._one_miss_trace()
        big_slack = MachineConfig().replace(
            **{"core.fetch_slack": 1000.0,
               "frontend.issue_prefetches": False}
        )
        no_slack = MachineConfig().replace(
            **{"core.fetch_slack": 0.0,
               "frontend.issue_prefetches": False}
        )
        a = simulate(trace, config=big_slack, warmup_fraction=0.0)
        b = simulate(trace, config=no_slack, warmup_fraction=0.0)
        assert a.stall_fetch == 0.0
        assert b.stall_fetch > 0.0
        assert a.cycles < b.cycles

    def test_exposed_latency_independent_of_slack(self):
        # exposed_latency records the raw miss latency (Fig. 11 metric),
        # before the slack is applied to the stall.
        trace = self._one_miss_trace()
        for slack in (0.0, 40.0):
            cfg = MachineConfig().replace(
                **{"core.fetch_slack": slack,
                   "frontend.issue_prefetches": False}
            )
            stats = simulate(trace, config=cfg, warmup_fraction=0.0)
            assert stats.total_exposed_latency() > 0.0


class TestWidthScaling:
    def test_wider_commit_fewer_cycles_when_fetch_bound_free(self):
        # On a cache-resident loop the commit width is the only limiter.
        # (On a miss-heavy trace a *wider* core is more fetch-bound —
        # FDIP's runahead gets less wall-clock per block — so total
        # cycles can go the other way; that behaviour is intentional.)
        from tests.helpers import looping_trace

        trace = looping_trace(n_blocks=16, repeats=30)
        narrow = simulate(
            trace,
            config=MachineConfig().replace(**{"core.commit_width": 2}),
            warmup_fraction=0.5,
        )
        wide = simulate(
            trace,
            config=MachineConfig().replace(**{"core.commit_width": 8}),
            warmup_fraction=0.5,
        )
        assert wide.cycles < narrow.cycles
        assert wide.ipc > narrow.ipc
