"""Benchmark harness: artifact schema, determinism, compare gating, and
the single-source-of-truth warmup default."""

import inspect
import json

import pytest

from repro.cli import build_parser, main
from repro.cpu.config import DEFAULT_WARMUP
from repro.experiments import bench


def _artifact(name, median, iqr=0.0, calibration=0.1, **extra):
    seconds = [median] * 3
    art = {
        "schema": bench.ARTIFACT_SCHEMA,
        "name": name,
        "quick": True,
        "repeats": len(seconds),
        "seconds": seconds,
        "median_seconds": median,
        "iqr_seconds": iqr,
        "work": {"amount": 1000, "unit": "instructions"},
        "throughput": {"per_second": 1000 / median,
                       "unit": "instructions/s"},
        "timings": {},
        "stats_digest": "0" * 16,
        "calibration_seconds": calibration,
        "workload": "mysql_sibench",
        "scale": "tiny",
        "seed": 1,
        "prefetcher": "fdip",
    }
    art.update(extra)
    return art


# ----------------------------------------------------------------------
# Artifact schema round-trip
# ----------------------------------------------------------------------
def test_artifact_round_trip(tmp_path):
    art = _artifact("hot_loop", 1.25, iqr=0.05)
    path = bench.write_artifact(art, tmp_path)
    assert path.name == "BENCH_hot_loop.json"
    loaded = bench.load_artifacts(tmp_path)
    assert loaded == {"hot_loop": art}


def test_load_artifacts_skips_unknown_schema(tmp_path):
    art = _artifact("hot_loop", 1.0)
    art["schema"] = bench.ARTIFACT_SCHEMA + 1
    (tmp_path / "BENCH_hot_loop.json").write_text(json.dumps(art))
    assert bench.load_artifacts(tmp_path) == {}


def test_run_benchmarks_writes_expected_fields(tmp_path):
    arts = bench.run_benchmarks(["hierarchy"], quick=True, repeats=1,
                                out_dir=tmp_path)
    assert len(arts) == 1
    art = json.loads((tmp_path / "BENCH_hierarchy.json").read_text())
    assert art["name"] == "hierarchy"
    assert art["quick"] is True
    assert art["repeats"] == 1
    assert len(art["seconds"]) == 1
    assert art["median_seconds"] > 0
    assert art["throughput"]["per_second"] > 0
    assert art["work"]["amount"] > 0
    assert art["calibration_seconds"] > 0
    assert len(art["stats_digest"]) == 16


def test_run_benchmarks_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown benchmark"):
        bench.run_benchmarks(["nonesuch"])


# ----------------------------------------------------------------------
# Determinism: wall times vary, simulated results must not
# ----------------------------------------------------------------------
def test_quick_stats_deterministic_across_runs():
    first = bench.run_benchmarks(["hot_loop", "hierarchy"], quick=True,
                                 repeats=1)
    second = bench.run_benchmarks(["hot_loop", "hierarchy"], quick=True,
                                  repeats=1)
    for a, b in zip(first, second):
        assert a["name"] == b["name"]
        assert a["stats_digest"] == b["stats_digest"]
        assert a["work"] == b["work"]


# ----------------------------------------------------------------------
# Compare mode
# ----------------------------------------------------------------------
def test_parse_regression_forms():
    assert bench.parse_regression("15%") == pytest.approx(0.15)
    assert bench.parse_regression("0.15") == pytest.approx(0.15)
    assert bench.parse_regression(" 25% ") == pytest.approx(0.25)
    with pytest.raises(ValueError):
        bench.parse_regression("-5%")
    with pytest.raises(ValueError):
        bench.parse_regression("fast")


def test_compare_no_regression():
    base = _artifact("hot_loop", 1.0)
    new = _artifact("hot_loop", 1.05)
    delta, threshold, regressed = bench.compare_artifacts(base, new, 0.15)
    assert delta == pytest.approx(0.05)
    assert not regressed


def test_compare_flags_25_percent_slowdown():
    base = _artifact("hot_loop", 1.0, iqr=0.02)
    new = _artifact("hot_loop", 1.25, iqr=0.02)
    delta, threshold, regressed = bench.compare_artifacts(base, new, 0.15)
    assert delta == pytest.approx(0.25)
    assert regressed


def test_compare_noise_widens_threshold():
    base = _artifact("hot_loop", 1.0, iqr=0.3)
    new = _artifact("hot_loop", 1.25, iqr=0.3)
    _, threshold, regressed = bench.compare_artifacts(base, new, 0.15)
    assert threshold > 0.25
    assert not regressed


def test_compare_normalizes_by_calibration():
    # New machine is uniformly 2x slower (calibration doubles too):
    # no regression after normalization.
    base = _artifact("hot_loop", 1.0, calibration=0.1)
    new = _artifact("hot_loop", 2.0, calibration=0.2)
    delta, _, regressed = bench.compare_artifacts(base, new, 0.15)
    assert delta == pytest.approx(0.0)
    assert not regressed


def test_compare_dirs_reports_missing(tmp_path):
    base_dir = tmp_path / "base"
    new_dir = tmp_path / "new"
    bench.write_artifact(_artifact("hot_loop", 1.0), base_dir)
    bench.write_artifact(_artifact("hierarchy", 1.0), base_dir)
    bench.write_artifact(_artifact("hot_loop", 1.0), new_dir)
    rows, problems = bench.compare_dirs(base_dir, new_dir, 0.15)
    assert len(rows) == 2
    assert any("hierarchy" in p and "missing" in p for p in problems)


def test_compare_dirs_tolerates_unreadable_artifacts(tmp_path):
    base_dir = tmp_path / "base"
    new_dir = tmp_path / "new"
    bench.write_artifact(_artifact("hot_loop", 1.0), base_dir)
    bench.write_artifact(_artifact("hot_loop", 1.0), new_dir)
    good = bench.write_artifact(_artifact("hierarchy", 1.0), base_dir)
    bench.write_artifact(_artifact("hierarchy", 1.0), new_dir)
    # Truncate one artifact mid-JSON, as a crashed bench run would.
    good.write_text(good.read_text()[: len(good.read_text()) // 2])
    rows, problems = bench.compare_dirs(base_dir, new_dir, 0.15)
    # The torn file is reported, not raised, and the healthy pair is
    # still compared (the truncated side then also shows as missing).
    assert any("unreadable artifact" in p for p in problems)
    assert any(r[0] == "hot_loop" for r in rows)


def test_compare_cli_exit_codes(tmp_path):
    base_dir = tmp_path / "base"
    good_dir = tmp_path / "good"
    bad_dir = tmp_path / "bad"
    bench.write_artifact(_artifact("hot_loop", 1.0, iqr=0.01), base_dir)
    bench.write_artifact(_artifact("hot_loop", 1.02, iqr=0.01), good_dir)
    bench.write_artifact(_artifact("hot_loop", 1.25, iqr=0.01), bad_dir)
    assert main(["bench", "compare", str(base_dir), str(good_dir),
                 "--max-regression", "15%"]) == 0
    assert main(["bench", "compare", str(base_dir), str(bad_dir),
                 "--max-regression", "15%"]) == 1
    assert main(["bench", "compare", str(base_dir)]) == 2
    assert main(["bench", "compare", str(tmp_path / "empty"),
                 str(good_dir)]) == 2


def test_committed_baseline_is_loadable():
    from pathlib import Path

    baseline = Path(__file__).resolve().parent.parent / "benchmarks" / \
        "baseline"
    arts = bench.load_artifacts(baseline)
    assert set(arts) == set(bench.BENCHMARK_NAMES)
    for art in arts.values():
        assert art["quick"] is True
        assert art["median_seconds"] > 0


# ----------------------------------------------------------------------
# DEFAULT_WARMUP: one source of truth for every entry point
# ----------------------------------------------------------------------
def test_default_warmup_single_source():
    from repro.cpu.simulator import FrontEndSimulator, simulate
    from repro.experiments import runner

    assert runner.DEFAULT_WARMUP is DEFAULT_WARMUP
    sig = inspect.signature(FrontEndSimulator.run)
    assert sig.parameters["warmup_fraction"].default == DEFAULT_WARMUP
    sig = inspect.signature(FrontEndSimulator.warmup)
    assert sig.parameters["warmup_fraction"].default == DEFAULT_WARMUP
    sig = inspect.signature(simulate)
    assert sig.parameters["warmup_fraction"].default == DEFAULT_WARMUP
    sig = inspect.signature(runner.run_prefetcher)
    assert sig.parameters["warmup"].default == DEFAULT_WARMUP
    sig = inspect.signature(runner.run_baseline)
    assert sig.parameters["warmup"].default == DEFAULT_WARMUP


def test_default_warmup_cli_parsers():
    parser = build_parser()
    warmup_defaults = []
    for action in parser._subparsers._group_actions[0].choices.values():
        for sub_action in action._actions:
            if sub_action.dest == "warmup":
                warmup_defaults.append(sub_action.default)
    assert warmup_defaults, "no --warmup flags found in the CLI"
    assert all(d == DEFAULT_WARMUP for d in warmup_defaults)
