"""Unit tests for SimStats bookkeeping and derived metrics."""


from repro.cpu.stats import LEVEL_DRAM, LEVEL_L2, LEVEL_LLC, SimStats
from repro.memory.cache import ORIGIN_FDIP, ORIGIN_PF


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimStats()
        s.instructions = 1000
        s.cycles = 500.0
        assert s.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_mpki(self):
        s = SimStats()
        s.instructions = 10_000
        s.l1i_misses = 50
        s.l2_demand_misses = 20
        assert s.l1i_mpki == 5.0
        assert s.l2_mpki == 2.0

    def test_mpki_no_instructions(self):
        assert SimStats().l1i_mpki == 0.0

    def test_accuracy(self):
        s = SimStats()
        s.pf_issued[ORIGIN_PF] = 100
        s.pf_useful[ORIGIN_PF] = 40
        assert s.accuracy(ORIGIN_PF) == 0.4
        assert s.accuracy(ORIGIN_FDIP) == 0.0

    def test_late_fraction(self):
        s = SimStats()
        s.pf_useful[ORIGIN_PF] = 50
        s.pf_late[ORIGIN_PF] = 5
        assert s.late_fraction(ORIGIN_PF) == 0.1

    def test_avg_distance(self):
        s = SimStats()
        s.distance_sum[ORIGIN_PF] = 300
        s.distance_n[ORIGIN_PF] = 10
        assert s.avg_distance(ORIGIN_PF) == 30.0
        assert s.avg_distance(ORIGIN_FDIP) == 0.0

    def test_dram_bytes(self):
        s = SimStats()
        s.dram_read_bytes = 100
        s.dram_write_bytes = 28
        assert s.dram_bytes == 128

    def test_total_exposed_latency(self):
        s = SimStats()
        s.exposed_latency[LEVEL_L2] = 10.0
        s.exposed_latency[LEVEL_LLC] = 20.0
        s.exposed_latency[LEVEL_DRAM] = 30.0
        assert s.total_exposed_latency() == 60.0


class TestReset:
    def test_reset_zeroes_everything(self):
        s = SimStats()
        s.instructions = 10
        s.pf_issued[ORIGIN_PF] = 5
        s.exposed_latency[LEVEL_L2] = 3.0
        s.extra["x"] = 1
        s.reset()
        assert s.instructions == 0
        assert s.pf_issued[ORIGIN_PF] == 0
        assert s.exposed_latency[LEVEL_L2] == 0.0
        assert s.extra == {}

    def test_reset_replaces_containers(self):
        # Holding a stale reference to a per-origin list must not alias
        # the fresh counters.
        s = SimStats()
        stale = s.pf_issued
        s.reset()
        stale[0] = 99
        assert s.pf_issued[0] == 0


class TestAsDict:
    def test_core_fields_present(self):
        s = SimStats()
        s.instructions = 100
        s.cycles = 50.0
        d = s.as_dict()
        for key in ("instructions", "cycles", "ipc", "l1i_mpki",
                    "l2_mpki", "dram_bytes"):
            assert key in d

    def test_extras_merged(self):
        s = SimStats()
        s.extra["hp_bundles_triggered"] = 7
        assert s.as_dict()["hp_bundles_triggered"] == 7
