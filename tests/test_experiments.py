"""Tests for the experiment harness (runner, figures, tables).

These run at 'tiny' scale on the smallest suite workload — slow-ish
integration tests, but they guard the full benchmark pipeline.
"""

import pytest

from repro.analysis.metrics import PrefetchReport
from repro.experiments import (
    clear_run_cache,
    compare_all,
    run_baseline,
    run_prefetcher,
)
from repro.experiments.runner import perfect_l1i_speedup

WORKLOAD = "mysql_sibench"


class TestRunner:
    def test_baseline_cached(self):
        a, _ = run_baseline(WORKLOAD, scale="tiny")
        b, _ = run_baseline(WORKLOAD, scale="tiny")
        assert a is b

    def test_distinct_keys_not_shared(self):
        a, _ = run_baseline(WORKLOAD, scale="tiny")
        b, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert a is not b

    def test_overrides_applied(self):
        a, _ = run_baseline(WORKLOAD, scale="tiny")
        b, _ = run_baseline(
            WORKLOAD, scale="tiny",
            overrides={"hierarchy.perfect_l1i": True},
        )
        assert b.l1i_misses == 0
        assert a.l1i_misses > 0

    def test_track_block_misses_returns_map(self):
        _, miss_map = run_baseline(
            WORKLOAD, scale="tiny", track_block_misses=True
        )
        assert isinstance(miss_map, dict)

    def test_compare_all_reports(self):
        reports = compare_all(WORKLOAD, prefetchers=("eip",), scale="tiny")
        assert set(reports) == {"eip"}
        assert isinstance(reports["eip"], PrefetchReport)

    def test_perfect_l1i_positive(self):
        assert perfect_l1i_speedup(WORKLOAD, scale="tiny") > 0.0

    def test_clear_cache(self):
        a, _ = run_baseline(WORKLOAD, scale="tiny")
        clear_run_cache()
        b, _ = run_baseline(WORKLOAD, scale="tiny")
        assert a is not b
        assert a.cycles == b.cycles  # still deterministic


class TestFigures:
    def test_fig01_footprints(self):
        from repro.experiments.figures import fig01_stage_footprints

        fps = fig01_stage_footprints(WORKLOAD, scale="tiny")
        assert set(fps) == {"read", "dispatch", "compile", "exec", "finish"}
        assert all(v > 0 for v in fps.values())

    def test_fig03_tradeoff(self):
        from repro.experiments.figures import fig03_distance_tradeoff

        out = fig03_distance_tradeoff(workloads=(WORKLOAD,), scale="tiny")
        assert set(out) == {"efetch", "mana", "eip"}
        for dist, acc, cov in out.values():
            assert dist >= 0.0
            assert 0.0 <= acc <= 1.0

    def test_fig09_speedups(self):
        from repro.experiments.figures import fig09_speedups

        out = fig09_speedups(workloads=(WORKLOAD,), scale="tiny")
        row = out[WORKLOAD]
        assert set(row) == {
            "efetch", "mana", "eip", "hierarchical", "perfect_l1i",
        }

    def test_fig16_bandwidth(self):
        from repro.experiments.figures import fig16_bandwidth

        out = fig16_bandwidth(workloads=(WORKLOAD,), scale="tiny")
        row = out[WORKLOAD]
        assert "overhead" in row and "metadata_fraction" in row
        assert 0.0 <= row["metadata_fraction"] <= 1.0

    def test_fig17_l2(self):
        from repro.experiments.figures import fig17_l2_prefetch

        out = fig17_l2_prefetch(workloads=(WORKLOAD,), scale="tiny")
        assert set(out[WORKLOAD]) == {"l1", "l2"}


class TestTables:
    def test_tab02(self):
        from repro.experiments.tables import tab02_distance_accuracy_coverage

        out = tab02_distance_accuracy_coverage(
            workloads=(WORKLOAD,), scale="tiny"
        )
        assert set(out) == {"efetch", "mana", "eip", "hierarchical"}
        for row in out.values():
            assert {"distance", "accuracy",
                    "coverage_l1", "coverage_l2"} == set(row)

    def test_tab04(self):
        from repro.experiments.tables import tab04_bundle_stats

        out = tab04_bundle_stats(workloads=(WORKLOAD,), scale="tiny")
        row = out[WORKLOAD]
        assert row["static_bundles"] > 0
        assert row["total_functions"] > row["static_bundles"]
        assert 0.0 < row["avg_jaccard"] <= 1.0


class TestAblations:
    def test_record_policy(self):
        from repro.experiments.ablations import ablation_record_policy

        out = ablation_record_policy(workloads=(WORKLOAD,), scale="tiny")
        assert set(out) == {"supersede", "keep_first"}

    def test_pacing(self):
        from repro.experiments.ablations import ablation_pacing

        out = ablation_pacing(workloads=(WORKLOAD,), scale="tiny")
        assert set(out) == {"paced", "all_at_once"}


class TestMoreFigures:
    def test_fig02_mana(self):
        from repro.experiments.figures import fig02_mana_lookahead

        out = fig02_mana_lookahead(lookaheads=(1, 3),
                                   workloads=(WORKLOAD,), scale="tiny")
        assert [la for la, _, _ in out] == [1, 3]
        for _, acc, cov in out:
            assert 0.0 <= acc <= 1.0
            assert -1.0 <= cov <= 1.0

    def test_fig02_efetch(self):
        from repro.experiments.figures import fig02_efetch_lookahead

        out = fig02_efetch_lookahead(lookaheads=(1, 2),
                                     workloads=(WORKLOAD,), scale="tiny")
        assert len(out) == 2

    def test_fig04(self):
        from repro.experiments.figures import fig04_trigger_jaccard

        out = fig04_trigger_jaccard(footprint_sizes=(16, 64),
                                    workloads=(WORKLOAD,), scale="tiny")
        assert set(out) == {"efetch", "mana", "eip"}
        assert all(len(series) == 2 for series in out.values())

    def test_fig10(self):
        from repro.experiments.figures import fig10_late_prefetches

        out = fig10_late_prefetches(workloads=(WORKLOAD,), scale="tiny")
        for value in out[WORKLOAD].values():
            assert 0.0 <= value <= 1.0

    def test_fig11(self):
        from repro.experiments.figures import fig11_miss_latency

        out = fig11_miss_latency(workloads=(WORKLOAD,), scale="tiny")
        base_total = sum(out[WORKLOAD]["fdip"].values())
        assert base_total == pytest.approx(1.0)

    def test_fig12(self):
        from repro.experiments.figures import fig12_long_range

        out = fig12_long_range(workloads=(WORKLOAD,), scale="tiny")
        for value in out[WORKLOAD].values():
            assert 0.0 <= value <= 1.0

    def test_fig14(self):
        from repro.experiments.figures import fig14_infinite_btb

        out = fig14_infinite_btb(workloads=(WORKLOAD,), scale="tiny")
        assert set(out[WORKLOAD]) == {"efetch", "mana", "eip",
                                      "hierarchical"}

    def test_fig15_ftq_normalized_at_24(self):
        from repro.experiments.figures import fig15_ftq

        out = fig15_ftq(sizes=(16, 24), workloads=(WORKLOAD,),
                        scale="tiny")
        values = dict(out)
        assert values[24] == pytest.approx(1.0)

    def test_fig15_itlb(self):
        from repro.experiments.figures import fig15_itlb

        out = fig15_itlb(sizes=(64,), workloads=(WORKLOAD,), scale="tiny")
        (size, base_ipc, hp_ipc), = out
        assert size == 64
        assert base_ipc > 0 and hp_ipc > 0

    def test_fig13(self):
        from repro.experiments.figures import fig13_metadata_sensitivity

        out = fig13_metadata_sensitivity(
            mat_sizes=(64,), buffer_kb=(64,), workloads=(WORKLOAD,),
            scale="tiny",
        )
        assert len(out["mat"]) == 1
        assert len(out["buffer"]) == 1

    def test_tab03(self):
        from repro.experiments.tables import tab03_l1i_sensitivity

        rows = tab03_l1i_sensitivity(sizes_kb=(32,),
                                     workloads=(WORKLOAD,), scale="tiny")
        assert len(rows) == 4  # one per prefetcher

    def test_ablation_initial_segments(self):
        from repro.experiments.ablations import ablation_initial_segments

        out = ablation_initial_segments(workloads=(WORKLOAD,),
                                        scale="tiny", values=(1, 2))
        assert [n for n, _ in out] == [1, 2]
