"""Declarative sweep manifests (docs/SWEEP_SERVICE.md).

The contracts under test: parsing collects *every* problem into one
precise ManifestError, expansion matches the flag-built ``grid()`` on
equivalent inputs, the seeded sampler is deterministic, and the
canonical dict form round-trips exactly (parse → expand → serialize →
parse → identical points).
"""

import json

import pytest

from repro.cli import main
from repro.experiments.manifest import (
    GridSample,
    ManifestError,
    SweepManifest,
    load_manifest,
    parse_manifest,
    tomllib,
)
from repro.experiments.sweep import DEFAULT_PREFETCHERS, grid

needs_toml = pytest.mark.skipif(
    tomllib is None, reason="tomllib needs Python 3.11+")


def _doc(**sweep):
    sweep.setdefault("workloads", ["mysql_sibench"])
    return {"sweep": sweep}


# ----------------------------------------------------------------------
# Parsing + validation
# ----------------------------------------------------------------------
class TestParse:
    def test_minimal_defaults(self):
        m = parse_manifest(_doc())
        assert m.workloads == ("mysql_sibench",)
        assert m.prefetchers == DEFAULT_PREFETCHERS
        assert m.include_baseline
        assert m.scales == ("bench",) and m.seeds == (1,)
        assert m.policies == () and m.sample is None

    def test_scalar_axis_aliases(self):
        m = parse_manifest(_doc(scale="tiny", seed=7))
        assert m.scales == ("tiny",) and m.seeds == (7,)

    def test_axis_alias_conflict(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest(_doc(scale="tiny", scales=["tiny", "bench"]))
        assert "either 'scale' or 'scales'" in str(exc.value)

    def test_all_errors_collected_with_paths(self):
        doc = {"sweep": {"workloads": ["nope"], "prefetchers": ["bogus"],
                         "scale": "huge", "bad_key": 1},
               "typo_section": {}}
        with pytest.raises(ManifestError) as exc:
            parse_manifest(doc, source="grid.toml")
        message = str(exc.value)
        assert message.startswith("grid.toml: invalid sweep manifest "
                                  "(5 problem(s))")
        for fragment in ("sweep.workloads[0]", "sweep.prefetchers[0]",
                         "sweep.scales[0]", "bad_key", "typo_section"):
            assert fragment in message, fragment
        assert exc.value.source == "grid.toml"
        assert len(exc.value.errors) == 5

    def test_missing_sweep_table(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest({})
        assert "required [sweep] table is missing" in str(exc.value)

    def test_missing_workloads(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest({"sweep": {}})
        assert "sweep.workloads: required key is missing" in str(exc.value)

    def test_unknown_override_rejected(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest(_doc(overrides={"hierarchy.nope": 1}))
        assert "sweep.overrides" in str(exc.value)

    def test_valid_override_reaches_points(self):
        m = parse_manifest(
            _doc(overrides={"hierarchy.l1i_bytes": 65536}))
        for p in m.expand():
            assert p.overrides == {"hierarchy.l1i_bytes": 65536}

    def test_warmup_range_checked(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest(_doc(warmup=1.5))
        assert "must be in [0, 1)" in str(exc.value)

    def test_bad_sample_table(self):
        with pytest.raises(ManifestError) as exc:
            parse_manifest({**_doc(), "sample": {"count": 0, "extra": 1}})
        message = str(exc.value)
        assert "sample.count" in message and "extra" in message

    def test_json_null_prefetcher_is_baseline(self):
        m = parse_manifest(_doc(prefetchers=[None, "eip"]))
        assert m.prefetchers == ("fdip", "eip")


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
class TestExpand:
    def test_matches_grid_on_equivalent_input(self):
        m = parse_manifest(_doc(workloads=["beego", "gin"],
                                prefetchers=["eip", "mana"],
                                scale="tiny", seed=3))
        assert m.expand() == grid(["beego", "gin"], ["eip", "mana"],
                                  scale="tiny", seed=3)

    def test_fdip_prefetcher_skipped_baseline_owns_it(self):
        m = parse_manifest(_doc(prefetchers=["fdip", "eip"]))
        labels = [p.label for p in m.expand()]
        assert labels == ["mysql_sibench/fdip", "mysql_sibench/eip"]

    def test_no_baseline(self):
        m = parse_manifest(_doc(prefetchers=["eip"],
                                include_baseline=False))
        assert [p.prefetcher for p in m.expand()] == ["eip"]

    def test_policy_axis_merges_policy_overrides(self):
        m = parse_manifest(_doc(prefetchers=["eip"],
                                policies=["lru", "pf_aware"],
                                overrides={"hierarchy.l1i_bytes": 65536}))
        points = m.expand()
        assert len(points) == 4  # 2 policies x (baseline + eip)
        assert [p.overrides["hierarchy.policy"] for p in points] == \
            ["lru", "lru", "pf_aware", "pf_aware"]
        # manifest-level overrides survive the policy merge
        assert all(p.overrides["hierarchy.l1i_bytes"] == 65536
                   for p in points)

    def test_full_count_matches_factorial(self):
        m = parse_manifest(_doc(workloads=["beego", "gin"],
                                prefetchers=["eip", "mana"],
                                policies=["lru", "bip"],
                                scales=["tiny", "bench"],
                                seeds=[1, 2, 3]))
        assert m.full_count == 2 * 3 * 2 * 2 * 3  # sc*sd*pol*wl*(base+2)
        assert len(m.expand()) == m.full_count


# ----------------------------------------------------------------------
# Seeded sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_indices_deterministic_and_subset(self):
        s = GridSample(count=10, seed=42)
        first, second = s.indices(100), s.indices(100)
        assert first == second == sorted(first)
        assert len(first) == 10
        assert all(0 <= i < 100 for i in first)

    def test_seed_changes_selection(self):
        assert GridSample(10, seed=1).indices(100) != \
            GridSample(10, seed=2).indices(100)

    def test_count_at_least_total_keeps_everything(self):
        assert GridSample(100, seed=1).indices(7) == list(range(7))

    def test_sampled_expansion_is_subset_of_full(self):
        base = _doc(workloads=["beego", "gin"], seeds=[1, 2])
        full = parse_manifest(base).expand()
        sampled = parse_manifest(
            {**base, "sample": {"count": 5, "seed": 9}}).expand()
        assert len(sampled) == 5
        full_keys = [p.key() for p in full]
        positions = [full_keys.index(p.key()) for p in sampled]
        assert positions == sorted(positions)  # input order preserved


# ----------------------------------------------------------------------
# Round-trip + file loading
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_parse_serialize_parse_identical(self):
        m = parse_manifest({
            "sweep": {"name": "rt", "workloads": ["beego"],
                      "prefetchers": ["eip"], "policies": ["bip"],
                      "scales": ["tiny"], "seeds": [1, 2],
                      "warmup": 0.25,
                      "overrides": {"hierarchy.l1i_bytes": 65536}},
            "sample": {"count": 3, "seed": 5},
        })
        again = parse_manifest(m.to_dict())
        assert again == m
        assert again.expand() == m.expand()
        # and through the JSON text form
        assert parse_manifest(json.loads(m.dumps_json())) == m

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_doc(scale="tiny")))
        m = load_manifest(path)
        assert m.scales == ("tiny",)

    @needs_toml
    def test_load_toml_file(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text('[sweep]\nworkloads = ["mysql_sibench"]\n'
                        'scale = "tiny"\n')
        assert load_manifest(path) == load_manifest(
            _write_json(tmp_path, _doc(scale="tiny")))

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text("sweep: {}")
        with pytest.raises(ManifestError) as exc:
            load_manifest(path)
        assert "unsupported manifest suffix" in str(exc.value)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ManifestError) as exc:
            load_manifest(tmp_path / "missing.json")
        assert "unreadable" in str(exc.value)

    @needs_toml
    def test_committed_manifests_validate(self):
        # The repo's own CI grids must always parse (the lint/CI gate
        # runs the same check via `repro manifest validate`).
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        manifests = sorted((repo / "manifests").glob("*.toml"))
        assert manifests, "no committed manifests found"
        for path in manifests:
            m = load_manifest(path)
            assert m.expand(), path

    @needs_toml
    def test_scale_grid_is_acceptance_sized(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        m = load_manifest(repo / "manifests" / "scale-grid.toml")
        assert m.full_count == 1200
        assert len(m.expand()) == 1200


def _write_json(tmp_path, doc):
    path = tmp_path / "equiv.json"
    path.write_text(json.dumps(doc))
    return path


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_validate_ok_and_bad(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_doc(scale="tiny")))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"sweep": {"workloads": ["nope"]}}))
        assert main(["manifest", "validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["manifest", "validate", str(good), str(bad)]) == 2
        captured = capsys.readouterr()
        assert "unknown workload" in captured.err

    def test_expand_json(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_doc(prefetchers=["eip"],
                                        scale="tiny")))
        assert main(["manifest", "expand", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] == 2
        assert [p["prefetcher"] for p in data["points"]] == \
            ["fdip", "eip"]

    def test_sweep_rejects_manifest_plus_flags(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_doc(scale="tiny")))
        assert main(["sweep", "beego", "--manifest", str(path)]) == 2
        assert "--manifest already defines" in capsys.readouterr().err

    def test_sweep_events_requires_service(self, capsys):
        assert main(["sweep", "beego", "--events", "x.jsonl"]) == 2
        assert "--events requires" in capsys.readouterr().err

    def test_sweep_rejects_invalid_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"sweep": {"workloads": ["nope"]}}))
        assert main(["sweep", "--manifest", str(path)]) == 2
        assert "unknown workload" in capsys.readouterr().err
