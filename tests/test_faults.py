"""Fault injection and the fault-tolerant sweep engine.

The resilience ISSUE's acceptance criteria: a sweep with injected
worker crashes, hangs beyond ``point_timeout``, and corrupted cache
entries completes under ``keep_going``, and every surviving point's
SimStats are bit-identical to a fault-free run.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import diskcache, runner
from repro.experiments.errors import (
    PointFailure,
    PointTimeoutError,
    TransientError,
    WorkerCrashError,
    backoff_delay,
)
from repro.experiments.faults import (
    BITFLIP,
    CRASH,
    CRASH_EXIT_CODE,
    ERROR,
    HANG,
    PARENT_SIGNAL,
    SHARD_KILL,
    TORN_JOURNAL,
    TRUNCATE,
    Fault,
    FaultPlan,
    corrupt_file,
)
from repro.experiments.sweep import SweepPoint, SweepReport, sweep

WORKLOAD = "mysql_sibench"
EIP_LABEL = f"{WORKLOAD}/eip"


@pytest.fixture()
def cache_dir(tmp_path):
    """A private disk-cache root for one test, restored afterwards."""
    previous = diskcache.set_cache_dir(tmp_path)
    runner.clear_run_cache()
    runner.reset_run_cache_stats()
    yield tmp_path
    runner.clear_run_cache()
    diskcache.set_cache_dir(previous)


def _points():
    return [SweepPoint(WORKLOAD, None, scale="tiny"),
            SweepPoint(WORKLOAD, "eip", scale="tiny")]


def _states(report):
    return [r.stats.state_dict() for r in report]


_CLEAN = None


def _clean_states():
    """Fault-free reference states (computed once, cache-independent).

    The explicit empty plan suppresses any ambient ``REPRO_FAULT_PLAN``
    (the CI chaos job runs this suite under one).
    """
    global _CLEAN
    if _CLEAN is None:
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=FaultPlan())
        assert report.ok
        _CLEAN = _states(report)
    return _CLEAN


# ----------------------------------------------------------------------
# Plan parsing and targeting
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan([
            Fault(CRASH, EIP_LABEL, times=1),
            Fault(HANG, 3, seconds=7.5),
            Fault(BITFLIP, "beego/mana", offset=12),
        ])
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.faults == plan.faults

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meltdown", 0)

    def test_bad_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            Fault(CRASH, 0, times=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultPlan.from_spec(
                {"faults": [{"kind": "crash", "point": 0, "blast": 9}]})

    def test_missing_point_rejected(self):
        with pytest.raises(ValueError, match="'kind' and 'point'"):
            FaultPlan.from_spec({"faults": [{"kind": "crash"}]})

    def test_matches_by_index_and_label(self):
        fault = Fault(CRASH, EIP_LABEL)
        assert fault.matches(5, EIP_LABEL, attempt=1)
        assert not fault.matches(5, "beego/eip", attempt=1)
        by_index = Fault(CRASH, 5)
        assert by_index.matches(5, "anything", attempt=1)
        assert not by_index.matches(4, "anything", attempt=1)

    def test_times_bounds_attempts(self):
        fault = Fault(ERROR, 0, times=2)
        assert fault.matches(0, "x", attempt=1)
        assert fault.matches(0, "x", attempt=2)
        assert not fault.matches(0, "x", attempt=3)
        persistent = Fault(ERROR, 0)
        assert persistent.matches(0, "x", attempt=99)

    def test_from_env_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(
            {"faults": [{"kind": "crash", "point": EIP_LABEL}]}))
        plan = FaultPlan.from_env()
        assert len(plan) == 1 and plan.faults[0].kind == CRASH

    def test_from_env_file(self, monkeypatch, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(
            {"faults": [{"kind": "hang", "point": 2, "seconds": 1.5}]}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan_file))
        plan = FaultPlan.from_env()
        assert plan.faults[0].seconds == 1.5

    def test_from_env_absent(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([Fault(CRASH, 0)])


class TestBackoff:
    def test_deterministic(self):
        a = backoff_delay(2, 0.25, "token")
        assert a == backoff_delay(2, 0.25, "token")

    def test_exponential_envelope(self):
        for attempt in (1, 2, 3):
            delay = backoff_delay(attempt, 0.1, "k")
            lo = 0.1 * 2 ** (attempt - 1) * 0.5
            hi = 0.1 * 2 ** (attempt - 1) * 1.5
            assert lo <= delay < hi

    def test_jitter_varies_by_token(self):
        assert backoff_delay(1, 0.1, "a") != backoff_delay(1, 0.1, "b")

    def test_zero_base_disables(self):
        assert backoff_delay(5, 0.0, "k") == 0.0

    def test_cap(self):
        assert backoff_delay(30, 1.0, "k", cap=3.0) == 3.0


# ----------------------------------------------------------------------
# Serial sweeps: injected failures, retry policy, report shape
# ----------------------------------------------------------------------
class TestSerialFaults:
    def test_flaky_crash_then_succeeds_bit_identical(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL, times=1)])
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=2, backoff_base=0.0)
        assert report.ok
        assert _states(report) == _clean_states()

    def test_persistent_crash_keep_going(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL)])
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=1, backoff_base=0.0,
                       keep_going=True)
        assert not report.ok
        assert [r.point.label for r in report] == [f"{WORKLOAD}/fdip"]
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert failure.label == EIP_LABEL
        assert failure.attempts == 2  # first try + one retry
        # The surviving point is still bit-identical to a clean run.
        assert _states(report) == _clean_states()[:1]

    def test_fail_fast_raises_point_failure(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL)])
        with pytest.raises(PointFailure, match="crash after 2 attempts"):
            sweep(_points(), use_cache=False, progress=None,
                  fault_plan=plan, max_retries=1, backoff_base=0.0)

    def test_injected_transient_retried(self, cache_dir):
        plan = FaultPlan([Fault(ERROR, EIP_LABEL, times=2)])
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=2, backoff_base=0.0)
        assert report.ok
        assert _states(report) == _clean_states()

    def test_serial_hang_maps_to_timeout(self, cache_dir):
        plan = FaultPlan([Fault(HANG, EIP_LABEL)])
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=0, backoff_base=0.0,
                       keep_going=True, point_timeout=1.0)
        (failure,) = report.failures
        assert failure.kind == "timeout"

    def test_zero_retries_single_attempt(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL, times=1)])
        report = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=0, backoff_base=0.0,
                       keep_going=True)
        (failure,) = report.failures
        assert failure.attempts == 1

    def test_env_plan_drives_sweep(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(
            {"faults": [{"kind": "crash", "point": EIP_LABEL}]}))
        report = sweep(_points(), use_cache=False, progress=None,
                       max_retries=0, backoff_base=0.0, keep_going=True)
        assert [f.label for f in report.failures] == [EIP_LABEL]


# ----------------------------------------------------------------------
# Parallel sweeps: real crashes, real hangs, worker supervision
# ----------------------------------------------------------------------
class TestParallelFaults:
    def test_real_worker_crash_retries_and_recovers(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL, times=1)])
        report = sweep(_points(), jobs=2, use_cache=False, progress=None,
                       fault_plan=plan, max_retries=2, backoff_base=0.01)
        assert report.ok
        assert _states(report) == _clean_states()

    def test_persistent_worker_crash_records_exit_code(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL)])
        report = sweep(_points(), jobs=2, use_cache=False, progress=None,
                       fault_plan=plan, max_retries=1, backoff_base=0.01,
                       keep_going=True)
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert str(CRASH_EXIT_CODE) in failure.message
        assert _states(report) == _clean_states()[:1]

    def test_hang_beyond_timeout_killed_then_recovers(self, cache_dir):
        # Attempt 1 sleeps 60s and is terminated at point_timeout;
        # attempt 2 runs clean.  The timeout is generous enough that
        # the genuinely-simulating sibling point never trips it.
        plan = FaultPlan([Fault(HANG, EIP_LABEL, times=1, seconds=60.0)])
        report = sweep(_points(), jobs=2, use_cache=False, progress=None,
                       fault_plan=plan, max_retries=1, backoff_base=0.01,
                       point_timeout=5.0)
        assert report.ok
        assert _states(report) == _clean_states()

    def test_persistent_hang_fails_after_retries(self, cache_dir):
        # Single-point sweep: only the hanging worker is under the
        # (tight) timeout, so slow machines cannot false-positive.
        plan = FaultPlan([Fault(HANG, EIP_LABEL, seconds=60.0)])
        report = sweep([SweepPoint(WORKLOAD, "eip", scale="tiny")],
                       jobs=2, use_cache=False, progress=None,
                       fault_plan=plan, max_retries=1, backoff_base=0.01,
                       point_timeout=1.0, keep_going=True)
        assert len(report) == 0
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_parallel_faulted_report_deterministic(self, cache_dir):
        plan = FaultPlan([Fault(CRASH, EIP_LABEL, times=1)])
        first = sweep(_points(), jobs=2, use_cache=False, progress=None,
                      fault_plan=plan, max_retries=1, backoff_base=0.01)
        second = sweep(_points(), jobs=2, use_cache=False, progress=None,
                       fault_plan=plan, max_retries=1, backoff_base=0.01)
        assert _states(first) == _states(second)
        assert [r.point for r in first] == [r.point for r in second]


# ----------------------------------------------------------------------
# Cache corruption: pre-existing and injected
# ----------------------------------------------------------------------
class TestCacheCorruption:
    def test_pre_corrupted_entry_resimulated_bit_identical(self, cache_dir):
        clean = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert clean.ok and len(diskcache.get_cache()) == 2
        # Tear the eip entry as a crashed writer would have.
        eip_path = diskcache.get_cache().path_for(_points()[1].key())
        assert corrupt_file(eip_path, TRUNCATE)
        runner.clear_run_cache()  # memory gone; disk has 1 good + 1 bad
        runner.reset_run_cache_stats()
        report = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert report.ok
        assert _states(report) == _states(clean)
        by_label = {r.point.label: r.source for r in report}
        assert by_label[f"{WORKLOAD}/fdip"] == "disk"
        assert by_label[EIP_LABEL] == "sim"  # quarantined, re-simulated
        s = runner.run_cache_stats()
        assert s.cache_corrupt == 1
        assert list(diskcache.get_cache().quarantined())

    def test_injected_cache_fault_corrupts_after_store(self, cache_dir):
        plan = FaultPlan([Fault(BITFLIP, EIP_LABEL, offset=100)])
        first = sweep(_points(), progress=None, fault_plan=plan)
        assert first.ok  # corruption lands after the result is returned
        runner.clear_run_cache()
        runner.reset_run_cache_stats()
        report = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert report.ok
        assert _states(report) == _states(first)
        assert runner.run_cache_stats().cache_corrupt == 1

    def test_parallel_worker_injects_cache_fault(self, cache_dir):
        plan = FaultPlan([Fault(TRUNCATE, EIP_LABEL)])
        first = sweep(_points(), jobs=2, progress=None, fault_plan=plan)
        assert first.ok
        runner.clear_run_cache()
        runner.reset_run_cache_stats()
        report = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert report.ok
        assert _states(report) == _states(first)
        assert runner.run_cache_stats().cache_corrupt == 1


# ----------------------------------------------------------------------
# Report ergonomics
# ----------------------------------------------------------------------
class TestSweepReport:
    def test_iterates_like_the_old_result_list(self, cache_dir):
        report = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert isinstance(report, SweepReport)
        assert len(report) == 2
        assert [r.point for r in report] == _points()
        assert report.ok

    def test_raise_if_failed(self, cache_dir):
        report = sweep(_points(), progress=None, fault_plan=FaultPlan())
        assert report.raise_if_failed() is report
        plan = FaultPlan([Fault(CRASH, EIP_LABEL)])
        failed = sweep(_points(), use_cache=False, progress=None,
                       fault_plan=plan, max_retries=0, backoff_base=0.0,
                       keep_going=True)
        with pytest.raises(PointFailure):
            failed.raise_if_failed()

    def test_failure_taxonomy_mapping(self):
        crash = PointFailure.from_error(
            "w/p", 0, WorkerCrashError("died", exitcode=-9), 3)
        assert crash.kind == "crash" and crash.attempts == 3
        timeout = PointFailure.from_error(
            "w/p", 1, PointTimeoutError("slow", timeout=5.0), 1)
        assert timeout.kind == "timeout"
        flaky = PointFailure.from_error("w/p", 2, TransientError("eh"), 2)
        assert flaky.kind == "transient"
        hard = PointFailure.from_error("w/p", 3, ValueError("bad"), 1)
        assert hard.kind == "error"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestSweepCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.max_retries == 2
        assert args.point_timeout is None
        assert not args.keep_going

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["sweep", "beego", "--max-retries", "5",
             "--point-timeout", "30", "--keep-going"])
        assert args.max_retries == 5
        assert args.point_timeout == 30.0
        assert args.keep_going

    def test_keep_going_exits_nonzero_with_partial_results(
            self, cache_dir, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(
            {"faults": [{"kind": "crash", "point": EIP_LABEL}]}))
        rc = main(["sweep", WORKLOAD, "--prefetchers", "eip",
                   "--scale", "tiny", "--no-cache", "--max-retries", "1",
                   "--keep-going"])
        assert rc == 1
        captured = capsys.readouterr()
        assert f"{WORKLOAD}/fdip" in captured.out  # survivor reported
        assert "FAIL" in captured.err
        assert "crash" in captured.err

    def test_fail_fast_aborts_nonzero(self, cache_dir, monkeypatch,
                                      capsys):
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(
            {"faults": [{"kind": "crash", "point": EIP_LABEL}]}))
        rc = main(["sweep", WORKLOAD, "--prefetchers", "eip",
                   "--scale", "tiny", "--no-cache", "--max-retries", "0"])
        assert rc == 1
        assert "sweep aborted" in capsys.readouterr().err

    def test_clean_sweep_exits_zero(self, cache_dir, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        rc = main(["sweep", WORKLOAD, "--prefetchers", "eip",
                   "--scale", "tiny", "--keep-going"])
        assert rc == 0
        assert "2/2 points" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Scheduler- and journal-layer fault kinds (run-level self-healing)
# ----------------------------------------------------------------------
class TestSchedulerFaults:
    def test_spec_round_trip_carries_layer_fields(self):
        plan = FaultPlan([
            Fault(SHARD_KILL, 1, times=2, after=3),
            Fault(PARENT_SIGNAL, 5, signum=2),
            Fault(TORN_JOURNAL, 1),
        ])
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.faults == plan.faults
        specs = {f.kind: f.to_spec() for f in clone.faults}
        assert specs[SHARD_KILL]["after"] == 3
        assert specs[PARENT_SIGNAL]["signum"] == 2
        assert "seconds" not in specs[TORN_JOURNAL]

    def test_layer_kinds_require_integer_targets(self):
        for kind in (SHARD_KILL, PARENT_SIGNAL, TORN_JOURNAL):
            with pytest.raises(ValueError, match="integer"):
                Fault(kind, EIP_LABEL)

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError, match="after"):
            Fault(SHARD_KILL, 0, after=0)

    def test_shard_fault_matches_claim_and_incarnation(self):
        plan = FaultPlan([Fault(SHARD_KILL, 0, times=2, after=2)])
        assert plan.shard_fault(0, claimed=2, incarnation=1)
        assert plan.shard_fault(0, claimed=2, incarnation=2)
        assert plan.shard_fault(0, claimed=2, incarnation=3) is None
        assert plan.shard_fault(0, claimed=1, incarnation=1) is None
        assert plan.shard_fault(1, claimed=2, incarnation=1) is None
        persistent = FaultPlan([Fault(SHARD_KILL, 0)])
        assert persistent.shard_fault(0, claimed=1, incarnation=99)

    def test_parent_signal_fault_matches_resolved_count(self):
        plan = FaultPlan([Fault(PARENT_SIGNAL, 3, signum=15)])
        assert plan.parent_signal_fault(3).signum == 15
        assert plan.parent_signal_fault(2) is None
        assert plan.parent_signal_fault(4) is None

    def test_journal_faults_match_segment(self):
        plan = FaultPlan([Fault(TORN_JOURNAL, 1),
                          Fault(TORN_JOURNAL, 2),
                          Fault(SHARD_KILL, 1)])
        assert len(plan.journal_faults(1)) == 1
        assert len(plan.journal_faults(2)) == 1
        assert plan.journal_faults(3) == ()

    def test_layer_faults_never_match_exec_or_cache(self):
        plan = FaultPlan([Fault(SHARD_KILL, 0), Fault(PARENT_SIGNAL, 0),
                          Fault(TORN_JOURNAL, 0)])
        assert plan.exec_fault(0, EIP_LABEL, attempt=1) is None
        assert plan.cache_faults(0, EIP_LABEL, attempt=1) == ()
