"""End-to-end integration tests on real suite workloads (tiny scale).

These are the slowest tests in the suite; they pin the qualitative
behaviours the benchmarks rely on, at the smallest scale that still
exhibits them.
"""

import pytest

from repro.cpu import MachineConfig, simulate
from repro.memory.cache import ORIGIN_FDIP, ORIGIN_PF
from repro.prefetchers import make_prefetcher
from repro.workloads.cache import get_application, get_trace

WORKLOAD = "mysql_sibench"


@pytest.fixture(scope="module")
def tiny_trace():
    return get_trace(WORKLOAD, scale="tiny")


@pytest.fixture(scope="module")
def baseline(tiny_trace):
    return simulate(tiny_trace)


class TestBaselineSanity:
    def test_server_like_miss_rate(self, baseline):
        # Instruction working set must dwarf the L1-I.
        assert baseline.l1i_mpki > 3.0

    def test_fdip_is_active(self, baseline):
        assert baseline.pf_issued[ORIGIN_FDIP] > 1000
        assert baseline.pf_useful[ORIGIN_FDIP] > 0

    def test_branch_population(self, baseline):
        assert baseline.cond_branches > 10_000
        assert baseline.returns > 500
        assert baseline.indirect_branches > 10

    def test_exposed_latency_beyond_l2(self, baseline):
        # Long-reuse misses must reach the LLC/DRAM levels — the
        # population HP exists to cover.
        beyond = (baseline.exposed_latency["LLC"]
                  + baseline.exposed_latency["DRAM"])
        assert beyond > 0

    def test_itlb_behaves(self, baseline):
        assert baseline.itlb_accesses > 0
        assert baseline.itlb_misses < baseline.itlb_accesses


class TestApplicationStructure:
    def test_bundles_exist(self):
        app = get_application(WORKLOAD)
        assert app.program.n_bundles > 10
        # Only a small share of functions are entries (Table 4).
        frac = app.program.n_bundles / len(app.binary)
        assert frac < 0.10

    def test_trace_tagged_density(self, tiny_trace):
        tagged = sum(tiny_trace.tagged)
        # Tags are sparse: well under 1% of blocks.
        assert 0 < tagged < len(tiny_trace) * 0.01

    def test_working_set_exceeds_l1i(self, tiny_trace):
        from repro.analysis.mrc import working_set_blocks

        ws = working_set_blocks(tiny_trace, 0.95)
        assert ws * 64 > 32 * 1024  # beyond the 32 KB L1-I


class TestPrefetcherIntegration:
    @pytest.mark.parametrize(
        "name", ["efetch", "mana", "eip", "rdip", "hierarchical"]
    )
    def test_runs_and_issues(self, tiny_trace, name):
        stats = simulate(tiny_trace, prefetcher=make_prefetcher(name))
        attempts = (stats.pf_issued[ORIGIN_PF]
                    + stats.pf_redundant[ORIGIN_PF])
        assert attempts > 0, name
        assert stats.instructions > 0

    def test_hp_reduces_misses(self, tiny_trace, baseline):
        hp = simulate(tiny_trace,
                      prefetcher=make_prefetcher("hierarchical"))
        assert hp.l1i_misses < baseline.l1i_misses

    def test_hp_distance_dwarfs_fine_grained(self, tiny_trace):
        hp = simulate(tiny_trace,
                      prefetcher=make_prefetcher("hierarchical"))
        ef = simulate(tiny_trace, prefetcher=make_prefetcher("efetch"))
        if ef.distance_n[ORIGIN_PF] and hp.distance_n[ORIGIN_PF]:
            assert (hp.avg_distance(ORIGIN_PF)
                    > 2 * ef.avg_distance(ORIGIN_PF))

    def test_hp_low_late_fraction(self, tiny_trace):
        hp = simulate(tiny_trace,
                      prefetcher=make_prefetcher("hierarchical"))
        assert hp.late_fraction(ORIGIN_PF) < 0.30

    def test_perfect_l1i_upper_bounds_hp(self, tiny_trace, baseline):
        cfg = MachineConfig().replace(**{"hierarchy.perfect_l1i": True})
        perfect = simulate(tiny_trace, config=cfg)
        hp = simulate(tiny_trace,
                      prefetcher=make_prefetcher("hierarchical"))
        assert perfect.ipc >= hp.ipc


class TestCrossSeedStability:
    def test_different_seeds_similar_baseline(self):
        a = simulate(get_trace(WORKLOAD, scale="tiny", seed=1))
        b = simulate(get_trace(WORKLOAD, scale="tiny", seed=2))
        # Same workload, different request streams: broad agreement.
        assert abs(a.ipc - b.ipc) / a.ipc < 0.35
