"""Determinism guarantees across the whole stack.

Reproducibility is a design contract (DESIGN.md): identical inputs must
produce byte-identical binaries, traces and cycle counts — across
process lifetimes, not just within one (no reliance on hash
randomization or id()s).
"""

import hashlib

from repro.cpu import simulate
from repro.prefetchers import make_prefetcher
from repro.workloads.generator import build_app
from tests.conftest import micro_params


def _binary_digest(binary) -> str:
    h = hashlib.sha256()
    for func in binary:
        h.update(func.name.encode())
        h.update(func.addr.to_bytes(8, "little"))
        for blk in func.blocks:
            h.update(bytes([blk.ninstr & 0xFF, int(blk.kind)]))
            h.update(str(blk.callee).encode())
            h.update(str(blk.targets).encode())
            h.update(f"{blk.taken_prob:.6f}".encode())
            h.update(blk.taken_next.to_bytes(4, "little", signed=True))
            h.update(blk.loop_count.to_bytes(2, "little"))
    return h.hexdigest()


def _trace_digest(trace) -> str:
    h = hashlib.sha256()
    for arr in (trace.pc, trace.ninstr, trace.kind, trace.taken,
                trace.target, trace.tagged):
        h.update(str(arr).encode())
    return h.hexdigest()


class TestDeterminism:
    def test_binary_digest_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert _binary_digest(a.binary) == _binary_digest(b.binary)

    def test_trace_digest_stable(self):
        app = build_app(micro_params())
        t1 = app.trace(6, seed=9)
        t2 = app.trace(6, seed=9)
        assert _trace_digest(t1) == _trace_digest(t2)

    def test_link_result_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert a.program.tagged == b.program.tagged
        assert (a.program.link_result.entry_addrs
                == b.program.link_result.entry_addrs)

    def test_full_pipeline_cycle_exact(self):
        app_a = build_app(micro_params())
        app_b = build_app(micro_params())
        trace_a = app_a.trace(8, seed=4)
        trace_b = app_b.trace(8, seed=4)
        for name in (None, "hierarchical", "eip"):
            pf_a = make_prefetcher(name) if name else None
            pf_b = make_prefetcher(name) if name else None
            sa = simulate(trace_a, prefetcher=pf_a)
            sb = simulate(trace_b, prefetcher=pf_b)
            assert sa.cycles == sb.cycles, name
            assert sa.l1i_misses == sb.l1i_misses, name
            assert sa.pf_issued == sb.pf_issued, name

    def test_route_maps_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert a.route_map == b.route_map
        assert a.request_weights == b.request_weights
