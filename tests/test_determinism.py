"""Determinism guarantees across the whole stack.

Reproducibility is a design contract (DESIGN.md): identical inputs must
produce byte-identical binaries, traces and cycle counts — across
process lifetimes, not just within one (no reliance on hash
randomization or id()s).
"""

import hashlib
import json
import pathlib

import pytest

from repro.cpu import simulate
from repro.cpu.simulator import FrontEndSimulator
from repro.prefetchers import make_prefetcher
from repro.workloads.generator import build_app
from tests.conftest import micro_params


def _binary_digest(binary) -> str:
    h = hashlib.sha256()
    for func in binary:
        h.update(func.name.encode())
        h.update(func.addr.to_bytes(8, "little"))
        for blk in func.blocks:
            h.update(bytes([blk.ninstr & 0xFF, int(blk.kind)]))
            h.update(str(blk.callee).encode())
            h.update(str(blk.targets).encode())
            h.update(f"{blk.taken_prob:.6f}".encode())
            h.update(blk.taken_next.to_bytes(4, "little", signed=True))
            h.update(blk.loop_count.to_bytes(2, "little"))
    return h.hexdigest()


def _trace_digest(trace) -> str:
    h = hashlib.sha256()
    for arr in (trace.pc, trace.ninstr, trace.kind, trace.taken,
                trace.target, trace.tagged):
        h.update(str(arr).encode())
    return h.hexdigest()


class TestDeterminism:
    def test_binary_digest_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert _binary_digest(a.binary) == _binary_digest(b.binary)

    def test_trace_digest_stable(self):
        app = build_app(micro_params())
        t1 = app.trace(6, seed=9)
        t2 = app.trace(6, seed=9)
        assert _trace_digest(t1) == _trace_digest(t2)

    def test_link_result_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert a.program.tagged == b.program.tagged
        assert (a.program.link_result.entry_addrs
                == b.program.link_result.entry_addrs)

    def test_full_pipeline_cycle_exact(self):
        app_a = build_app(micro_params())
        app_b = build_app(micro_params())
        trace_a = app_a.trace(8, seed=4)
        trace_b = app_b.trace(8, seed=4)
        for name in (None, "hierarchical", "eip"):
            pf_a = make_prefetcher(name) if name else None
            pf_b = make_prefetcher(name) if name else None
            sa = simulate(trace_a, prefetcher=pf_a)
            sb = simulate(trace_b, prefetcher=pf_b)
            assert sa.cycles == sb.cycles, name
            assert sa.l1i_misses == sb.l1i_misses, name
            assert sa.pf_issued == sb.pf_issued, name

    def test_route_maps_stable(self):
        a = build_app(micro_params())
        b = build_app(micro_params())
        assert a.route_map == b.route_map
        assert a.request_weights == b.request_weights

    def test_simstats_every_field_identical(self, micro_trace):
        """Two FrontEndSimulator runs of the same trace/config/
        prefetcher agree on *every* raw counter, not just headline
        metrics — the contract the result cache serializes."""
        for name in (None, "hierarchical", "mana"):
            runs = []
            for _ in range(2):
                pf = make_prefetcher(name) if name else None
                sim = FrontEndSimulator(prefetcher=pf,
                                        track_block_misses=True)
                runs.append((sim.run(micro_trace, warmup_fraction=0.4),
                             dict(sim.hierarchy.l2_miss_map)))
            (sa, ma), (sb, mb) = runs
            assert sa == sb, name                      # SimStats.__eq__
            assert sa.state_dict() == sb.state_dict(), name
            assert ma == mb, name


class TestSweepDeterminism:
    """The parallel sweep engine returns byte-identical results to the
    serial path (ISSUE acceptance: worker scheduling must not leak
    into any counter)."""

    POINTS = None  # built lazily: 2 workloads x 2 prefetchers

    @classmethod
    def _points(cls):
        from repro.experiments.sweep import grid

        if cls.POINTS is None:
            cls.POINTS = grid(
                ("mysql_sibench", "beego"), ("eip", "efetch"),
                include_baseline=False, scale="tiny",
            )
        return cls.POINTS

    def test_parallel_matches_serial(self):
        from repro.experiments.runner import clear_run_cache
        from repro.experiments.sweep import sweep

        clear_run_cache()
        serial = sweep(self._points(), jobs=1, use_cache=False,
                       progress=None)
        parallel = sweep(self._points(), jobs=2, use_cache=False,
                         progress=None)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.point == p.point
            assert s.stats.state_dict() == p.stats.state_dict(), \
                s.point.label
            assert s.source == p.source == "sim"

    def test_sweep_results_in_input_order(self):
        from repro.experiments.sweep import sweep

        results = sweep(self._points(), jobs=2, progress=None)
        assert [r.point for r in results] == self._points()


class TestMicroserviceSweepDeterminism:
    """Golden matrix over the microservice request-graph family: the
    per-request SLO metrics (request.* / probe.request_* in
    SimStats.extra) must be bit-identical between a serial sweep and a
    parallel one — the tracker's timelines ride the same pickle
    transport as every other counter."""

    POINTS = None  # built lazily: 2 msvc workloads x 2 HP variants

    @classmethod
    def _points(cls):
        from repro.experiments.sweep import grid

        if cls.POINTS is None:
            cls.POINTS = grid(
                ("msvc_social", "msvc_hotel"),
                ("hierarchical", "hp_compressed"),
                include_baseline=False, scale="tiny",
            )
        return cls.POINTS

    def test_parallel_matches_serial_with_slo_metrics(self):
        from repro.experiments.runner import clear_run_cache
        from repro.experiments.sweep import sweep

        clear_run_cache()
        serial = sweep(self._points(), jobs=1, use_cache=False,
                       progress=None)
        parallel = sweep(self._points(), jobs=2, use_cache=False,
                         progress=None)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.point == p.point
            assert s.stats.has_request_latency, s.point.label
            assert s.stats.state_dict() == p.stats.state_dict(), \
                s.point.label
            assert (s.stats.extra["probe.request_latency"]
                    == p.stats.extra["probe.request_latency"]), \
                s.point.label


class TestGoldenMatrix:
    """The policy refactor contract: with the default LRU substrate and
    the I-TLB prefetch path off, every workload × prefetcher point is
    bit-identical to the stats recorded before eviction became
    pluggable (tests/data/golden_matrix.json, tiny scale).

    Only the fields present in the golden file are compared — SimStats
    may grow new counters (they start at zero and cannot retroactively
    change the recorded ones).
    """

    _GOLDEN = json.loads(
        (pathlib.Path(__file__).parent / "data" / "golden_matrix.json")
        .read_text()
    )

    @pytest.mark.parametrize(
        "point", _GOLDEN["points"],
        ids=[f"{p['workload']}-{p['prefetcher']}"
             for p in _GOLDEN["points"]],
    )
    def test_point_bit_identical(self, point):
        from repro.experiments.runner import run_prefetcher

        stats, _ = run_prefetcher(
            point["workload"], point["prefetcher"],
            scale=self._GOLDEN["scale"], use_cache=False,
        )
        current = json.loads(json.dumps(stats.state_dict()))
        golden = point["stats"]
        mismatched = {
            field: (golden[field], current[field])
            for field in golden
            if current[field] != golden[field]
        }
        assert not mismatched
