"""Tests for the extension features: RDIP, multi-core shared metadata,
trace serialization, miss-ratio curves, and the CLI."""

import pytest

from repro.cpu import simulate
from repro.memory.cache import ORIGIN_PF
from repro.prefetchers import RDIPPrefetcher, make_prefetcher
from tests.conftest import micro_machine


class TestRDIP:
    def test_registered(self):
        assert isinstance(make_prefetcher("rdip"), RDIPPrefetcher)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RDIPPrefetcher(signature_depth=0)

    def test_issues_on_recurring_context(self, micro_trace):
        stats = simulate(micro_trace, prefetcher=RDIPPrefetcher())
        attempts = stats.pf_issued[ORIGIN_PF] + stats.pf_redundant[ORIGIN_PF]
        assert attempts > 0
        assert "rdip_table_entries" in stats.extra

    def test_covers_misses(self, micro_trace_long, micro_cfg):
        base = simulate(micro_trace_long, config=micro_cfg)
        rdip = simulate(micro_trace_long, config=micro_cfg,
                        prefetcher=RDIPPrefetcher())
        assert rdip.l1i_misses < base.l1i_misses

    def test_miss_cap_respected(self, micro_trace):
        pf = RDIPPrefetcher(max_misses_per_signature=2)
        simulate(micro_trace, prefetcher=pf)
        assert all(len(v) <= 2 for v in pf._table.values())


class TestSharedMetadata:
    @pytest.fixture(scope="class")
    def result(self, micro_app):
        from repro.cpu.multicore import simulate_shared

        traces = [micro_app.trace(12, seed=s) for s in (1, 2, 3)]
        return simulate_shared(traces, config=micro_machine())

    def test_needs_two_cores(self, micro_app):
        from repro.cpu.multicore import simulate_shared

        with pytest.raises(ValueError):
            simulate_shared([micro_app.trace(4, seed=1)])

    def test_recorder_index_validated(self):
        from repro.cpu.multicore import make_shared_group

        with pytest.raises(ValueError):
            make_shared_group(2, recorder=5)

    def test_all_cores_simulated(self, result):
        assert result.n_cores == 3
        assert all(s.instructions > 0 for s in result.core_stats)

    def test_replay_only_cores_benefit(self, result):
        # The paper's premise: one core's history covers the others'
        # control flow.  Replay-only cores must eliminate misses.
        for core in range(1, 3):
            assert result.coverage(core) > 0.1

    def test_shared_structures_are_shared(self):
        from repro.cpu.multicore import make_shared_group

        group = make_shared_group(3)
        assert group[0].shared_mat is group[1].shared_mat
        assert group[1].shared_buffer is group[2].shared_buffer
        assert group[0].record_enabled
        assert not group[1].record_enabled


class TestSerialization:
    def test_roundtrip_identical(self, micro_trace, tmp_path):
        from repro.workloads.serialization import load_trace, save_trace

        path = tmp_path / "trace.npz"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        assert loaded.pc == micro_trace.pc
        assert loaded.kind == micro_trace.kind
        assert loaded.taken == micro_trace.taken
        assert loaded.tagged == micro_trace.tagged
        assert loaded.requests == micro_trace.requests
        assert loaded.stage_spans == micro_trace.stage_spans
        assert loaded.n_instructions == micro_trace.n_instructions

    def test_simulation_equivalence(self, micro_trace, tmp_path):
        from repro.workloads.serialization import load_trace, save_trace

        path = tmp_path / "trace.npz"
        save_trace(micro_trace, path)
        loaded = load_trace(path)
        a = simulate(micro_trace)
        b = simulate(loaded)
        assert a.cycles == b.cycles
        assert a.l1i_misses == b.l1i_misses

    def test_version_check(self, micro_trace, tmp_path):
        import numpy as np

        from repro.workloads.serialization import load_trace, save_trace

        path = tmp_path / "trace.npz"
        save_trace(micro_trace, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["meta"] = np.array('{"version": 999, "n_instructions": 0}')
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestMissRatioCurves:
    def test_monotone_nonincreasing(self, micro_trace):
        from repro.analysis.mrc import miss_ratio_curve

        curve = miss_ratio_curve(micro_trace, [64, 256, 1024, 4096])
        ratios = [r for _, r in curve]
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_huge_cache_only_cold_misses(self, micro_trace):
        from repro.analysis.mrc import (
            miss_ratio_curve,
            stack_distance_histogram,
        )

        hist, cold = stack_distance_histogram(micro_trace)
        total = sum(hist) + cold
        (capacity, ratio), = miss_ratio_curve(micro_trace, [1 << 22])
        assert ratio == pytest.approx(cold / total)

    def test_rejects_bad_capacity(self, micro_trace):
        from repro.analysis.mrc import miss_ratio_curve

        with pytest.raises(ValueError):
            miss_ratio_curve(micro_trace, [0])

    def test_working_set(self, micro_trace):
        from repro.analysis.mrc import working_set_blocks

        ws90 = working_set_blocks(micro_trace, 0.90)
        ws99 = working_set_blocks(micro_trace, 0.99)
        assert 1 <= ws90 <= ws99

    def test_working_set_target_validated(self, micro_trace):
        from repro.analysis.mrc import working_set_blocks

        with pytest.raises(ValueError):
            working_set_blocks(micro_trace, 1.5)


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tidb_tpcc" in out
        assert "hierarchical" in out

    def test_bundles(self, capsys):
        from repro.cli import main

        assert main(["bundles", "mysql_sibench", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Bundle entries" in out

    def test_run_baseline_only(self, capsys):
        from repro.cli import main

        assert main(["run", "mysql_sibench", "--prefetcher", "fdip",
                     "--scale", "tiny"]) == 0
        assert "FDIP baseline" in capsys.readouterr().out

    def test_trace_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out_file = str(tmp_path / "t.npz")
        assert main(["trace", "mysql_sibench", "-o", out_file,
                     "--scale", "tiny"]) == 0
        assert main(["replay", out_file, "--prefetcher", "fdip"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_unknown_workload_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "redis"])


class TestPIF:
    def test_registered(self):
        from repro.prefetchers import PIFPrefetcher

        pf = make_prefetcher("pif")
        assert isinstance(pf, PIFPrefetcher)
        assert pf.name == "pif"

    def test_bigger_budget_than_mana(self):
        from repro.prefetchers import ManaPrefetcher, PIFPrefetcher

        pif = PIFPrefetcher()
        mana = ManaPrefetcher()
        assert pif.index_entries > mana.index_entries
        assert pif.storage_bytes() > 100 * 1024  # ~paper's 200 KB class

    def test_covers_at_least_as_much_as_mana(self, micro_trace_long,
                                             micro_cfg):
        from repro.prefetchers import ManaPrefetcher, PIFPrefetcher

        base = simulate(micro_trace_long, config=micro_cfg)
        mana = simulate(micro_trace_long, config=micro_cfg,
                        prefetcher=ManaPrefetcher())
        pif = simulate(micro_trace_long, config=micro_cfg,
                       prefetcher=PIFPrefetcher())
        mana_cov = base.l1i_misses - mana.l1i_misses
        pif_cov = base.l1i_misses - pif.l1i_misses
        assert pif_cov >= mana_cov * 0.8


class TestCharacterize:
    def test_profile_fields(self, micro_app, micro_trace):
        from repro.workloads.characterize import characterize

        profile = characterize(micro_app, micro_trace)
        assert profile.n_functions == len(micro_app.binary)
        assert profile.executed_ws_kb > 0
        assert profile.ws95_kb <= profile.executed_ws_kb + 1
        assert 0.0 < profile.bundle_jaccard <= 1.0
        assert profile.reuse_p50 <= profile.reuse_p90
        assert set(profile.stage_footprints_kb) == {"alpha", "beta"}
        assert len(profile.rows()) == 10

    def test_cli_characterize(self, capsys):
        from repro.cli import main

        assert main(["characterize", "mysql_sibench",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "bundle Jaccard" in out
