"""Unit tests for BTB, RAS, I-TLB, TAGE and ITTAGE."""

import pytest

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ittage import ITTagePredictor
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import TagePredictor
from repro.memory.tlb import InstructionTLB


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900
        assert btb.misses == 1 and btb.lookups == 2

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets
        step = btb.n_sets * 4  # same set stride (pc >> 2 indexing)
        pcs = [0x100, 0x100 + step, 0x100 + 2 * step]
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.lookup(pcs[0])
        btb.update(pcs[2], 3)
        assert pcs[1] not in btb
        assert pcs[0] in btb

    def test_infinite_mode(self):
        btb = BranchTargetBuffer(None)
        for i in range(100000):
            btb.update(i * 4, i)
        assert len(btb) == 100000
        assert btb.lookup(4 * 50000) == 50000

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100, 8)

    def test_target_update(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x100, 0x900)
        btb.update(0x100, 0xA00)
        assert btb.lookup(0x100) == 0xA00


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(2)
        for v in (1, 2, 3):
            ras.push(v)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was overwritten

    def test_top_entries_newest_first(self):
        ras = ReturnAddressStack(8)
        for v in (1, 2, 3, 4):
            ras.push(v)
        assert ras.top_entries(3) == (4, 3, 2)
        assert ras.top_entries(10) == (4, 3, 2, 1)

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.clear()
        assert len(ras) == 0
        assert ras.top_entries(2) == ()


class TestITLB:
    def test_miss_then_hit(self):
        tlb = InstructionTLB(4, walk_latency=40)
        assert tlb.translate(100) == 40
        assert tlb.translate(100) == 0
        assert tlb.miss_rate == 0.5

    def test_lru_capacity(self):
        tlb = InstructionTLB(2, walk_latency=40)
        tlb.translate(1)
        tlb.translate(2)
        tlb.translate(1)      # refresh 1
        tlb.translate(3)      # evicts 2
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    def test_needs_entries(self):
        with pytest.raises(ValueError):
            InstructionTLB(0)


class TestTage:
    def test_learns_biased_branch(self):
        tage = TagePredictor()
        correct = 0
        for i in range(2000):
            correct += tage.predict_and_update(0x1000, True)
        assert correct / 2000 > 0.98

    def test_learns_alternating_pattern(self):
        tage = TagePredictor()
        correct = 0
        for i in range(4000):
            outcome = (i % 2) == 0
            ok = tage.predict_and_update(0x2000, outcome)
            if i >= 2000:
                correct += ok
        assert correct / 2000 > 0.9

    def test_learns_short_loop_exit(self):
        tage = TagePredictor()
        correct = 0
        total = 0
        for rep in range(600):
            for it in range(4):
                outcome = it < 3  # taken 3x, then exit
                ok = tage.predict_and_update(0x3000, outcome)
                if rep >= 300:
                    total += 1
                    correct += ok
        assert correct / total > 0.85

    def test_random_branch_tracks_bias(self):
        import random
        rng = random.Random(1)
        tage = TagePredictor()
        correct = 0
        n = 4000
        for _ in range(n):
            outcome = rng.random() < 0.1
            correct += tage.predict_and_update(0x4000, outcome)
        assert correct / n > 0.8  # should at least track the 90% bias

    def test_accuracy_property(self):
        tage = TagePredictor()
        assert tage.accuracy == 0.0
        tage.predict_and_update(0x10, True)
        assert 0.0 <= tage.accuracy <= 1.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TagePredictor(bimodal_entries=1000)
        with pytest.raises(ValueError):
            TagePredictor(tables=[(1000, 8, 8)])

    def test_folded_registers_match_reference_fold(self):
        # The incrementally maintained folded registers must equal
        # _fold of the current GHR at every step (the hot-path hash
        # optimization's correctness invariant).
        import random
        rng = random.Random(7)
        tage = TagePredictor()
        for step in range(5000):
            tage.predict_and_update(rng.randrange(0, 1 << 20) * 4,
                                    rng.random() < 0.6)
            if step % 250 == 0:
                for t, (size, hist, tag_bits) in enumerate(tage.tables):
                    log_size = size.bit_length() - 1
                    assert tage._f_idx[t] == tage._fold(
                        tage.ghr, hist, log_size)
                    assert tage._f_tag[t] == tage._fold(
                        tage.ghr, hist, tag_bits)
                    assert tage._f_tag2[t] == tage._fold(
                        tage.ghr, hist, tag_bits - 1)

    def test_hot_path_hash_matches_index_tag_reference(self):
        # The inlined index/tag computation in predict_and_update must
        # reproduce the reference _index_tag hash.
        import random
        rng = random.Random(11)
        tage = TagePredictor()
        for _ in range(2000):
            pc = rng.randrange(0, 1 << 24) * 4
            pc_h = pc >> 2
            for t in range(len(tage.tables)):
                size_mask, log_size, tag_mask = tage._geom[t]
                idx = (pc_h ^ (pc_h >> log_size)
                       ^ tage._f_idx[t]) & size_mask
                tg = (pc_h ^ tage._f_tag[t]
                      ^ (tage._f_tag2[t] << 1)) & tag_mask
                assert (idx, tg) == tage._index_tag(pc, t)
            tage.predict_and_update(pc, rng.random() < 0.5)

    def test_load_state_dict_rebuilds_folds(self):
        import random
        rng = random.Random(13)
        a = TagePredictor()
        for _ in range(500):
            a.predict_and_update(rng.randrange(0, 1 << 16) * 4,
                                 rng.random() < 0.5)
        b = TagePredictor()
        b.load_state_dict(a.state_dict())
        assert b._f_idx == a._f_idx
        assert b._f_tag == a._f_tag
        assert b._f_tag2 == a._f_tag2
        # And the restored predictor behaves identically.
        for _ in range(200):
            pc = rng.randrange(0, 1 << 16) * 4
            taken = rng.random() < 0.5
            assert (a.predict_and_update(pc, taken)
                    == b.predict_and_update(pc, taken))


class TestITTage:
    def test_learns_stable_target(self):
        it = ITTagePredictor()
        correct = 0
        for i in range(1000):
            correct += it.predict_and_update(0x100, 0x4000)
        assert correct / 1000 > 0.99

    def test_learns_context_dependent_targets(self):
        # Target alternates with a period the path history can capture.
        it = ITTagePredictor()
        correct = 0
        total = 0
        for i in range(6000):
            target = 0x4000 if (i % 2) == 0 else 0x8000
            ok = it.predict_and_update(0x100, target)
            if i >= 3000:
                total += 1
                correct += ok
        assert correct / total > 0.8

    def test_random_targets_mostly_mispredict(self):
        import random
        rng = random.Random(2)
        it = ITTagePredictor()
        targets = [0x1000 * k for k in range(1, 9)]
        correct = sum(
            it.predict_and_update(0x200, rng.choice(targets))
            for _ in range(2000)
        )
        assert correct / 2000 < 0.5

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            ITTagePredictor(base_entries=1000)
