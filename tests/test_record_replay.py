"""Unit tests for the Record and Replay engines (Figure 8)."""

import pytest

from repro.core.compression import SpatialRegion
from repro.core.metadata import (
    MetadataBuffer,
    SEGMENT_BYTES,
    SEGMENT_REGIONS,
)
from repro.core.record import RecordEngine
from repro.core.replay import ReplayEngine


def make_buffer(n_segments=32, on_invalidate=None):
    return MetadataBuffer(n_segments * SEGMENT_BYTES,
                          on_invalidate=on_invalidate)


def record_bundle(engine, bundle_id, regions, insts_per_region=100,
                  old_head=-1):
    head = engine.begin(bundle_id, old_head)
    for base in regions:
        engine.observe_instructions(insts_per_region)
        engine.observe_region(SpatialRegion(base, 0b1))
    return head, engine.end()


class TestRecordEngine:
    def test_fresh_record_single_segment(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        head, result = record_bundle(eng, 42, [0, 64, 128])
        assert result.head_index == head
        assert result.n_segments == 1
        assert result.n_regions == 3
        assert not result.truncated
        seg = buf.segment(head)
        assert seg.bundle_id == 42
        assert [r.base for r in seg.valid_regions()] == [0, 64, 128]

    def test_multi_segment_chain(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        n = SEGMENT_REGIONS + 5
        head, result = record_bundle(eng, 7, list(range(n)))
        assert result.n_segments == 2
        chain = buf.chain(head, 7)
        assert len(chain) == 2
        assert chain[0].next_seg == chain[1].index
        assert chain[1].next_seg == -1
        assert len(chain[0].valid_regions()) == SEGMENT_REGIONS
        assert len(chain[1].valid_regions()) == 5

    def test_num_insts_recorded_at_segment_creation(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        head, _ = record_bundle(eng, 7, list(range(SEGMENT_REGIONS + 1)),
                                insts_per_region=10)
        chain = buf.chain(head, 7)
        assert chain[0].num_insts == 0
        # Second segment created after SEGMENT_REGIONS+1 regions'
        # instructions were observed.
        assert chain[1].num_insts == (SEGMENT_REGIONS + 1) * 10

    def test_supersede_preserves_head(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        head, _ = record_bundle(eng, 9, [0, 1, 2])
        head2, result2 = record_bundle(eng, 9, [100, 101], old_head=head)
        assert head2 == head
        seg = buf.segment(head)
        assert [r.base for r in seg.valid_regions()] == [100, 101]

    def test_supersede_truncates_longer_old_chain(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        head, r1 = record_bundle(eng, 9, list(range(SEGMENT_REGIONS * 2)))
        assert r1.n_segments == 2
        _, r2 = record_bundle(eng, 9, [500], old_head=head)
        assert r2.n_segments == 1
        chain = buf.chain(head, 9)
        assert len(chain) == 1

    def test_supersede_extends_shorter_old_chain(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        head, _ = record_bundle(eng, 9, [0])
        _, r2 = record_bundle(eng, 9, list(range(SEGMENT_REGIONS + 2)),
                              old_head=head)
        assert r2.n_segments == 2
        assert len(buf.chain(head, 9)) == 2

    def test_truncation_at_max_segments(self):
        buf = make_buffer()
        eng = RecordEngine(buf, max_segments=2)
        _, result = record_bundle(eng, 9, list(range(SEGMENT_REGIONS * 3)))
        assert result.truncated
        assert result.n_segments == 2

    def test_write_callback_per_segment(self):
        writes = []
        buf = make_buffer()
        eng = RecordEngine(buf, on_write=writes.append)
        record_bundle(eng, 9, list(range(SEGMENT_REGIONS + 1)))
        assert len(writes) == 2

    def test_begin_while_active_raises(self):
        buf = make_buffer()
        eng = RecordEngine(buf)
        eng.begin(1)
        with pytest.raises(RuntimeError):
            eng.begin(2)
        eng.abort()
        eng.begin(2)  # fine after abort

    def test_end_without_begin_raises(self):
        eng = RecordEngine(make_buffer())
        with pytest.raises(RuntimeError):
            eng.end()


class TestReplayEngine:
    def _recorded(self, n_regions, insts_per_region=100):
        buf = make_buffer()
        rec = RecordEngine(buf)
        head, _ = record_bundle(rec, 5, list(range(n_regions)),
                                insts_per_region)
        return buf, head

    def test_start_miss_on_empty(self):
        buf = make_buffer()
        rep = ReplayEngine(buf)
        assert not rep.start(5, 0)
        assert not rep.active

    def test_initial_segments_immediate(self):
        buf, head = self._recorded(SEGMENT_REGIONS * 3)
        rep = ReplayEngine(buf, initial_segments=2)
        assert rep.start(5, head)
        views = rep.take_eligible(bundle_insts=0)
        assert len(views) == 2
        assert rep.remaining_segments == 1

    def test_pacing_by_num_insts(self):
        buf, head = self._recorded(SEGMENT_REGIONS * 3, insts_per_region=10)
        rep = ReplayEngine(buf, initial_segments=1)
        rep.start(5, head)
        assert len(rep.take_eligible(0)) == 1
        # Segment 1 is released once executed instructions surpass
        # segment 0's num_insts (0) -> already eligible at 1.
        assert len(rep.take_eligible(1)) == 1
        # Segment 2 waits for segment 1's num_insts: segment 1 was
        # created when the (SEGMENT_REGIONS+1)-th region was observed.
        pace = (SEGMENT_REGIONS + 1) * 10
        assert rep.take_eligible(pace) == []
        assert len(rep.take_eligible(pace + 1)) == 1
        assert not rep.active  # exhausted

    def test_snapshot_survives_supersede(self):
        buf = make_buffer()
        rec = RecordEngine(buf)
        head, _ = record_bundle(rec, 5, [0, 1, 2])
        rep = ReplayEngine(buf)
        assert rep.start(5, head)
        # Concurrent supersede overwrites the same segment in place.
        record_bundle(rec, 5, [900], old_head=head)
        views = rep.take_eligible(1 << 40)
        bases = [r.base for v in views for r in v.regions]
        assert bases == [0, 1, 2]  # replay sees the snapshot

    def test_stop_cancels(self):
        buf, head = self._recorded(4)
        rep = ReplayEngine(buf)
        rep.start(5, head)
        rep.stop()
        assert rep.take_eligible(1 << 40) == []

    def test_bad_initial_segments(self):
        with pytest.raises(ValueError):
            ReplayEngine(make_buffer(), initial_segments=0)
