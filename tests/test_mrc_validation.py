"""Cross-validation: miss-ratio curves vs. simulated caches.

The analytic MRC (fully-associative LRU over stack distances) should
track the simulated set-associative L1-I's miss behaviour: bigger
caches on the curve correspond to fewer misses in simulation.
"""

import pytest

from repro.analysis.mrc import miss_ratio_curve
from repro.cpu import MachineConfig, simulate


@pytest.fixture(scope="module")
def curve(micro_trace):
    warm = int(len(micro_trace) * 0.3)
    capacities = [128, 512, 2048]  # 8 KB, 32 KB, 128 KB
    return dict(miss_ratio_curve(micro_trace, capacities, start=warm))


class TestMRCAgainstSimulation:
    def test_analytic_curve_orders_simulated_misses(self, micro_trace,
                                                    curve):
        misses = {}
        for kb in (8, 32, 128):
            cfg = MachineConfig().replace(
                **{"hierarchy.l1i_bytes": kb * 1024,
                   "frontend.issue_prefetches": False}
            )
            stats = simulate(micro_trace, config=cfg, warmup_fraction=0.3)
            misses[kb] = stats.l1i_misses
        # Both the analytic curve and the simulation agree on ordering.
        assert misses[8] > misses[32] > misses[128] or (
            misses[32] == misses[128]  # already fits
        )
        assert curve[128] >= curve[512] >= curve[2048]

    def test_analytic_ratio_brackets_simulated(self, micro_trace, curve):
        """The simulated no-prefetch miss ratio at 32 KB lands in the
        same ballpark as the analytic fully-associative ratio."""
        cfg = MachineConfig().replace(
            **{"frontend.issue_prefetches": False}
        )
        stats = simulate(micro_trace, config=cfg, warmup_fraction=0.3)
        simulated = stats.l1i_misses / max(1, stats.demand_accesses)
        analytic = curve[512]
        # Set-associativity and warmup effects allow generous slack.
        assert abs(simulated - analytic) < 0.2
