"""Unit tests for the FDIP decoupled front-end model."""

from repro.cpu.stats import SimStats
from repro.frontend.fdip import (
    FDIPFrontEnd,
    FrontEndParams,
    PEN_BTB_MISS,
    PEN_MISPREDICT,
    PEN_NONE,
)
from repro.isa.instructions import BranchKind
from repro.memory.cache import ORIGIN_FDIP
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from tests.helpers import TraceAssembler, linear_trace


def make_fdip(trace, **params):
    stats = SimStats()
    fdip = FDIPFrontEnd(FrontEndParams(**params), stats)
    hier = MemoryHierarchy(HierarchyParams(), stats)
    fdip.bind(trace, hier)
    return fdip, hier, stats


class TestRunahead:
    def test_prefetches_up_to_ftq_depth(self):
        trace = linear_trace(64, ninstr=16)  # one cache block per record
        fdip, hier, stats = make_fdip(trace, ftq_entries=8)
        fdip.advance(commit_i=0, now=0.0)
        # Blocks 1..8 prefetched (block 0 is the demand itself).
        assert stats.pf_issued[ORIGIN_FDIP] == 8

    def test_advances_with_commit(self):
        trace = linear_trace(64, ninstr=16)
        fdip, hier, stats = make_fdip(trace, ftq_entries=8)
        fdip.advance(0, 0.0)
        fdip.advance(4, 10.0)
        assert stats.pf_issued[ORIGIN_FDIP] == 12

    def test_disabled_prefetch_still_predicts(self):
        trace = linear_trace(32, ninstr=16)
        fdip, hier, stats = make_fdip(trace, issue_prefetches=False)
        fdip.advance(0, 0.0)
        assert stats.pf_issued[ORIGIN_FDIP] == 0


class TestBranchHandling:
    def _cond_trace(self, taken: bool, repeat=1):
        asm = TraceAssembler()
        pc = 0x400000
        for _ in range(repeat):
            asm.add(pc, 4, BranchKind.COND, taken=taken,
                    target=(pc + 64 if taken else None))
            asm.linear(pc + 64 if taken else pc + 16, 3)
            pc += 0x1000
        return asm.build()

    def test_cold_taken_branch_is_btb_miss(self):
        trace = self._cond_trace(taken=True)
        fdip, hier, stats = make_fdip(trace)
        fdip.advance(0, 0.0)
        pen = fdip.penalty_at(0)
        # Either the direction predictor or the BTB fails on this cold
        # taken branch; both halt the runahead.
        assert pen in (PEN_MISPREDICT, PEN_BTB_MISS)
        assert fdip._blocked_at == -1 or fdip._ptr == 1

    def test_not_taken_branch_needs_no_btb(self):
        trace = self._cond_trace(taken=False)
        fdip, hier, stats = make_fdip(trace)
        fdip.advance(0, 0.0)
        assert stats.btb_lookups == 0

    def test_blocked_until_commit_then_resumes(self):
        asm = TraceAssembler()
        asm.linear(0x400000, 4, ninstr=16)
        asm.add(0x400100, 4, BranchKind.COND, taken=True, target=0x401000)
        asm.linear(0x401000, 10, ninstr=16)
        trace = asm.build()
        fdip, hier, stats = make_fdip(trace, ftq_entries=16)
        fdip.advance(0, 0.0)
        # The runahead halted at the cold taken branch (index 4).
        assert fdip._blocked_at == 4
        before = stats.pf_issued[ORIGIN_FDIP]
        fdip.advance(1, 1.0)  # commit still before the branch: blocked
        fdip.advance(2, 2.0)
        assert stats.pf_issued[ORIGIN_FDIP] == before
        fdip.advance(4, 4.0)  # branch resolves as commit reaches it
        assert stats.pf_issued[ORIGIN_FDIP] > before

    def test_call_and_return_use_ras(self):
        asm = TraceAssembler()
        # call f (return addr = 0x400010), f returns.
        asm.add(0x400000, 4, BranchKind.CALL, taken=True, target=0x402000)
        asm.add(0x402000, 4, BranchKind.RET, taken=True, target=0x400010)
        asm.linear(0x400010, 4)
        trace = asm.build()
        fdip, hier, stats = make_fdip(trace)
        for i in range(len(trace)):
            fdip.advance(i, float(i))
        assert stats.returns == 1
        assert stats.ras_mispredicts == 0

    def test_mismatched_return_mispredicts(self):
        asm = TraceAssembler()
        asm.add(0x402000, 4, BranchKind.RET, taken=True, target=0x400010)
        asm.linear(0x400010, 4)
        trace = asm.build()
        fdip, hier, stats = make_fdip(trace)
        fdip.advance(0, 0.0)
        assert stats.ras_mispredicts == 1

    def test_warm_btb_no_penalty(self):
        # Same taken branch twice: second pass sees a BTB hit and a
        # learned direction.
        asm = TraceAssembler()
        for _ in range(6):
            asm.add(0x400000, 4, BranchKind.COND, taken=True,
                    target=0x401000)
            asm.add(0x401000, 4, BranchKind.JUMP, taken=True,
                    target=0x400000)
        trace = asm.build()
        fdip, hier, stats = make_fdip(trace)
        penalties = []
        for i in range(len(trace)):
            fdip.advance(i, float(i))
            penalties.append(fdip.penalty_at(i))
        assert penalties[-2:] == [PEN_NONE, PEN_NONE]

    def test_indirect_call_counted(self):
        asm = TraceAssembler()
        asm.add(0x400000, 4, BranchKind.ICALL, taken=True, target=0x405000)
        asm.add(0x405000, 2, BranchKind.RET, taken=True, target=0x400010)
        asm.linear(0x400010, 2)
        trace = asm.build()
        fdip, hier, stats = make_fdip(trace)
        for i in range(len(trace)):
            fdip.advance(i, float(i))
        assert stats.indirect_branches == 1

    def test_infinite_btb_param(self):
        trace = linear_trace(8)
        fdip, hier, stats = make_fdip(trace, btb_entries=None)
        assert fdip.btb.infinite
