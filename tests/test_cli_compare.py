"""CLI `compare` and `run` flows end to end (tiny scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "beego"])
        assert args.prefetchers == ["efetch", "mana", "eip",
                                    "hierarchical"]
        assert args.scale == "bench"
        assert not args.perfect

    def test_run_prefetcher_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beego",
                                       "--prefetcher", "ghost"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beego", "--scale", "huge"])


class TestCompareFlow:
    def test_compare_single_prefetcher(self, capsys):
        rc = main(["compare", "mysql_sibench", "--scale", "tiny",
                   "--prefetchers", "eip"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eip" in out
        assert "speedup" in out

    def test_run_with_hp(self, capsys):
        rc = main(["run", "mysql_sibench", "--scale", "tiny",
                   "--prefetcher", "hierarchical"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out


class TestProbeFlow:
    def test_table_output(self, capsys):
        rc = main(["probe", "mysql_sibench", "--scale", "tiny",
                   "--prefetcher", "hierarchical", "--interval", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "l1i_mpki" in out
        assert "whole window" in out

    def test_json_output(self, capsys):
        import json

        rc = main(["probe", "mysql_sibench", "--scale", "tiny",
                   "--prefetcher", "eip", "--interval", "2000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "mysql_sibench"
        assert len(payload["ipc"]) == len(payload["instructions"]) > 0
        assert all(x > 0 for x in payload["ipc"])

    def test_oversized_interval_fails_cleanly(self, capsys):
        rc = main(["probe", "mysql_sibench", "--scale", "tiny",
                   "--interval", "100000000"])
        assert rc == 1
        assert "no probe samples" in capsys.readouterr().err


class TestSweepParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workloads == []
        assert args.jobs == 1
        assert not args.no_cache
        assert not args.clear_cache
        assert args.prefetchers == ["efetch", "mana", "eip",
                                    "hierarchical"]

    def test_flags(self):
        args = build_parser().parse_args(
            ["sweep", "beego", "gin", "--jobs", "4", "--no-cache",
             "--clear-cache", "--scale", "tiny", "--seed", "7"])
        assert args.workloads == ["beego", "gin"]
        assert args.jobs == 4
        assert args.no_cache and args.clear_cache
        assert args.seed == 7

    def test_rejects_unknown_prefetcher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--prefetchers", "ghost"])


class TestSweepFlow:
    def test_unknown_workload_errors(self, capsys):
        rc = main(["sweep", "not_a_workload", "--scale", "tiny"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_serial_sweep_progress_and_summary(self, capsys):
        rc = main(["sweep", "mysql_sibench", "--prefetchers", "eip",
                   "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        # Per-point progress lines plus the summary table/footer.
        assert "[1/2]" in out and "[2/2]" in out
        assert "mysql_sibench/fdip" in out
        assert "mysql_sibench/eip" in out
        assert "speedup" in out
        assert "2 points in" in out

    def test_parallel_sweep_jobs(self, capsys):
        rc = main(["sweep", "mysql_sibench", "--prefetchers", "eip",
                   "--jobs", "2", "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "--jobs 2" in out
        assert "2 points in" in out
        assert "[1/2]" in out and "[2/2]" in out

    def test_no_cache_forces_resimulation(self, capsys):
        rc = main(["sweep", "mysql_sibench", "--prefetchers", "eip",
                   "--scale", "tiny", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 simulated" in out

    def test_clear_cache_only(self, capsys):
        rc = main(["sweep", "--clear-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cleared simulation cache" in out
