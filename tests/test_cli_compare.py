"""CLI `compare` and `run` flows end to end (tiny scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "beego"])
        assert args.prefetchers == ["efetch", "mana", "eip",
                                    "hierarchical"]
        assert args.scale == "bench"
        assert not args.perfect

    def test_run_prefetcher_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beego",
                                       "--prefetcher", "ghost"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beego", "--scale", "huge"])


class TestCompareFlow:
    def test_compare_single_prefetcher(self, capsys):
        rc = main(["compare", "mysql_sibench", "--scale", "tiny",
                   "--prefetchers", "eip"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eip" in out
        assert "speedup" in out

    def test_run_with_hp(self, capsys):
        rc = main(["run", "mysql_sibench", "--scale", "tiny",
                   "--prefetcher", "hierarchical"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
