"""Smoke tests for the example scripts.

Each example must at least compile and expose a ``main``; the cheapest
one runs end-to-end against a saved micro trace via the CLI-equivalent
API so the documented flows cannot rot silently.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLE_FILES}
        assert "quickstart.py" in names
        assert len(names) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES,
                             ids=[p.stem for p in EXAMPLE_FILES])
    def test_example_importable_with_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), path.name
        assert module.__doc__, f"{path.name} needs a module docstring"

    def test_custom_prefetcher_class_works(self, micro_trace, micro_cfg):
        from repro.cpu import simulate

        module = _load(EXAMPLES_DIR / "custom_prefetcher.py")
        pf = module.NextLinesPrefetcher(depth=2)
        stats = simulate(micro_trace, config=micro_cfg, prefetcher=pf)
        assert stats.pf_issued[2] > 0

    def test_custom_prefetcher_validates_depth(self):
        module = _load(EXAMPLES_DIR / "custom_prefetcher.py")
        with pytest.raises(ValueError):
            module.NextLinesPrefetcher(depth=0)
