"""Unit tests for BlockSpec / Function / Binary."""

import pytest

from repro.isa.binary import Binary, BlockSpec, Function
from repro.isa.instructions import BranchKind, TEXT_BASE


def _ret(n=2):
    return BlockSpec(ninstr=n, kind=BranchKind.RET)


def simple_function(name="f", sizes=(4, 2)):
    blocks = [BlockSpec(ninstr=sizes[0], kind=BranchKind.COND,
                        taken_prob=0.1, taken_next=1), _ret(sizes[1])]
    return Function(name, blocks)


class TestBlockSpec:
    def test_size(self):
        assert BlockSpec(ninstr=5).size == 20

    def test_call_requires_callee(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.CALL)
        with pytest.raises(ValueError, match="CALL requires a callee"):
            blk.validate(0, 2)

    def test_icall_requires_targets(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.ICALL)
        with pytest.raises(ValueError, match="ICALL requires targets"):
            blk.validate(0, 2)

    def test_cond_target_out_of_range(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.COND, taken_next=5)
        with pytest.raises(ValueError, match="out of"):
            blk.validate(0, 3)

    def test_loop_count_requires_backward_cond(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.COND, taken_next=2,
                        loop_count=4)
        with pytest.raises(ValueError, match="backward"):
            blk.validate(1, 4)

    def test_backward_loop_ok(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.COND, taken_next=0,
                        loop_count=4)
        blk.validate(1, 3)  # no raise

    def test_fallthrough_off_end_rejected(self):
        blk = BlockSpec(ninstr=2, kind=BranchKind.CALL, callee="g")
        with pytest.raises(ValueError, match="fall"):
            blk.validate(1, 2)  # CALL as last block would fall off


class TestFunction:
    def test_offsets_and_size(self):
        f = simple_function(sizes=(4, 2))
        assert f.blocks[0].offset == 0
        assert f.blocks[1].offset == 16
        assert f.size == 24

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Function("f", [])

    def test_addresses_require_layout(self):
        f = simple_function()
        with pytest.raises(RuntimeError, match="layout"):
            f.block_addr(0)

    def test_terminator_addr(self):
        binary = Binary(entry="f")
        f = binary.add_function(simple_function(sizes=(4, 2)))
        binary.layout()
        assert f.terminator_addr(0) == f.addr + 3 * 4
        assert f.terminator_addr(1) == f.addr + 16 + 1 * 4

    def test_static_callees_includes_icall_targets(self):
        blocks = [
            BlockSpec(ninstr=2, kind=BranchKind.CALL, callee="g"),
            BlockSpec(ninstr=2, kind=BranchKind.ICALL,
                      targets=("h", "k")),
            _ret(),
        ]
        f = Function("f", blocks)
        assert sorted(f.static_callees()) == ["g", "h", "k"]


class TestBinary:
    def _binary(self):
        binary = Binary(entry="main")
        binary.add_function(Function("main", [
            BlockSpec(ninstr=3, kind=BranchKind.CALL, callee="f"),
            BlockSpec(ninstr=1, kind=BranchKind.JUMP, taken_next=0),
        ]))
        binary.add_function(simple_function("f"))
        return binary

    def test_duplicate_function_rejected(self):
        binary = self._binary()
        with pytest.raises(ValueError, match="duplicate"):
            binary.add_function(simple_function("f"))

    def test_missing_entry_rejected(self):
        binary = Binary(entry="nope")
        binary.add_function(simple_function("f"))
        with pytest.raises(ValueError, match="entry"):
            binary.validate()

    def test_undefined_callee_rejected(self):
        binary = Binary(entry="main")
        binary.add_function(Function("main", [
            BlockSpec(ninstr=3, kind=BranchKind.CALL, callee="ghost"),
            _ret(),
        ]))
        with pytest.raises(ValueError, match="ghost"):
            binary.validate()

    def test_layout_assigns_aligned_increasing_addresses(self):
        binary = self._binary()
        binary.layout()
        funcs = list(binary)
        assert funcs[0].addr == TEXT_BASE
        for f in funcs:
            assert f.addr % Binary.FUNCTION_ALIGN == 0
        for a, b in zip(funcs, funcs[1:]):
            assert b.addr >= a.end_addr

    def test_get_unknown_raises_keyerror_with_name(self):
        binary = self._binary()
        with pytest.raises(KeyError, match="nope"):
            binary.get("nope")

    def test_text_size_and_len(self):
        binary = self._binary()
        assert len(binary) == 2
        assert binary.text_size == sum(f.size for f in binary)

    def test_contains(self):
        binary = self._binary()
        assert "main" in binary
        assert "other" not in binary
