"""Property tests for the synthetic function-body builder.

``_make_body`` must always produce a structurally valid block program —
``Function``'s constructor validates every block — for any combination
of size budget, call sites, switches and loops.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.binary import Function
from repro.isa.instructions import BranchKind
from repro.workloads.generator import _make_body
from tests.conftest import micro_params

SLOW = settings(
    max_examples=80, suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@SLOW
@given(
    seed=st.integers(0, 10_000),
    size=st.integers(24, 4096),
    n_callees=st.integers(0, 6),
    optional_mask=st.integers(0, 63),
    loop=st.booleans(),
    n_switch=st.integers(0, 3),
)
def test_make_body_always_valid(seed, size, n_callees, optional_mask,
                                loop, n_switch):
    rng = random.Random(seed)
    params = micro_params()
    callees = [
        (f"callee_{k}", bool(optional_mask & (1 << k)))
        for k in range(n_callees)
    ]
    switch = tuple(f"variant_{j}" for j in range(n_switch)) or None
    body = _make_body(rng, params, size, callees, loop=loop,
                      switch_targets=switch)
    func = Function("f", body)  # constructor validates every block

    # Structural invariants beyond per-block validation:
    assert body[-1].kind == BranchKind.RET
    emitted_callees = [b.callee for b in body if b.kind == BranchKind.CALL]
    assert emitted_callees == [name for name, _ in callees]
    if switch:
        icalls = [b for b in body if b.kind == BranchKind.ICALL]
        assert len(icalls) == 1
        assert icalls[0].targets == switch
    # The body roughly meets its size budget (always >= target since
    # blocks are appended until the budget is consumed).
    assert func.size >= min(size, 24)


@SLOW
@given(seed=st.integers(0, 10_000), size=st.integers(24, 2048))
def test_loop_blocks_form_backward_cond(seed, size):
    rng = random.Random(seed)
    body = _make_body(rng, micro_params(), size, [], loop=True)
    loops = [
        (i, b) for i, b in enumerate(body)
        if b.kind == BranchKind.COND and b.loop_count
    ]
    assert len(loops) == 1
    index, blk = loops[0]
    assert blk.taken_next < index
    assert 3 <= blk.loop_count <= 9
