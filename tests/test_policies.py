"""Replacement policies: unit behavior, snapshot round trips, the
I-TLB prefetch path, and the policy × prefetcher surface (experiments
family + CLI flags)."""

import pytest

from repro.cpu import MachineConfig, simulate
from repro.memory.cache import (
    E_USED,
    ORIGIN_DEMAND,
    ORIGIN_FDIP,
    ORIGIN_PF,
    SetAssocCache,
)
from repro.memory.policies import (
    BIP_MRU_PERIOD,
    POLICY_DESCRIPTIONS,
    POLICY_NAMES,
    BIPPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memory.tlb import InstructionTLB


def _one_set_cache(assoc=4, policy="lru"):
    """A single-set cache so recency order is directly observable."""
    return SetAssocCache(assoc * 64, assoc, name="t", policy=policy)


def _order(cache):
    return cache.resident_blocks()


class TestRegistry:
    def test_names_and_descriptions_align(self):
        assert set(POLICY_DESCRIPTIONS) == set(POLICY_NAMES)
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name
            assert policy.description == POLICY_DESCRIPTIONS[name]

    def test_instance_passthrough(self):
        policy = LRUPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="lru"):
            make_policy("plru")

    def test_base_insert_abstract(self):
        with pytest.raises(NotImplementedError):
            ReplacementPolicy().insert_line({}, 0, [0, 0, -1, False], 1)

    def test_each_cache_gets_its_own_instance(self):
        a = _one_set_cache(policy="bip")
        b = _one_set_cache(policy="bip")
        assert a.policy is not b.policy


class TestLRU:
    def test_insert_at_mru_evict_lru(self):
        cache = _one_set_cache(assoc=2)
        cache.insert(0)
        cache.insert(1)
        evicted = cache.insert(2)
        assert evicted[0] == 0
        assert _order(cache) == [1, 2]  # LRU first

    def test_hit_promotes(self):
        cache = _one_set_cache(assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0)
        assert cache.insert(2)[0] == 1


class TestLIP:
    def test_fill_enters_at_lru(self):
        cache = _one_set_cache(assoc=4, policy="lip")
        for block in range(3):
            cache.insert(block)
        assert _order(cache) == [2, 1, 0]
        # An unreferenced fill is the next victim, not block 0.
        cache.insert(3)
        assert cache.insert(4)[0] == 3  # the newest fill sat at LRU

    def test_only_hits_promote(self):
        cache = _one_set_cache(assoc=2, policy="lip")
        cache.insert(0)
        cache.insert(1)
        cache.lookup(1)  # promote 1 to MRU
        assert cache.insert(2)[0] == 0


class TestBIP:
    def test_every_nth_fill_at_mru(self):
        cache = SetAssocCache(2 * 64 * 1024, 2, name="t", policy="bip")
        # Distinct sets so no evictions interfere; watch the counter.
        for block in range(BIP_MRU_PERIOD - 1):
            cache.insert(block)
        assert cache.policy._fills == BIP_MRU_PERIOD - 1
        cache.insert(BIP_MRU_PERIOD - 1)
        assert cache.policy._fills == 0  # MRU fill resets the counter

    def test_mru_fill_lands_at_mru(self):
        policy = BIPPolicy()
        cache = _one_set_cache(assoc=4, policy=policy)
        policy._fills = BIP_MRU_PERIOD - 2
        cache.insert(0)   # LIP-style: enters at LRU
        cache.insert(1)   # the BIP_MRU_PERIOD-th fill: enters at MRU
        assert _order(cache)[-1] == 1

    def test_counter_snapshots(self):
        policy = BIPPolicy()
        policy._fills = 7
        clone = BIPPolicy()
        clone.load_state_dict(policy.state_dict())
        assert clone._fills == 7
        clone.reset()
        assert clone._fills == 0


class TestPrefetchAware:
    def test_prefetch_inserts_distal(self):
        cache = _one_set_cache(assoc=4, policy="pf_aware")
        cache.insert(0, ORIGIN_DEMAND, used=True)
        cache.insert(1, ORIGIN_PF)
        assert _order(cache)[0] == 1  # prefetch parked at LRU

    def test_unused_prefetch_evicted_before_lru_demand(self):
        cache = _one_set_cache(assoc=3, policy="pf_aware")
        cache.insert(0, ORIGIN_DEMAND, used=True)
        cache.insert(1, ORIGIN_FDIP)            # unused prefetch
        cache.insert(2, ORIGIN_DEMAND, used=True)
        # 1 sits at LRU anyway; move it mid-stack to prove the scan.
        cache.lookup(1)
        evicted = cache.insert(3, ORIGIN_DEMAND, used=True)
        assert evicted[0] == 1

    def test_demand_hit_protects_prefetched_line(self):
        cache = _one_set_cache(assoc=3, policy="pf_aware")
        cache.insert(0, ORIGIN_DEMAND, used=True)
        cache.insert(1, ORIGIN_PF)
        cache.insert(2, ORIGIN_DEMAND, used=True)
        entry = cache.lookup(1)   # first demand touch
        entry[E_USED] = True
        evicted = cache.insert(3, ORIGIN_DEMAND, used=True)
        assert evicted[0] == 0    # strict LRU victim, 1 survived

    def test_falls_back_to_lru_without_prefetches(self):
        cache = _one_set_cache(assoc=2, policy="pf_aware")
        cache.insert(0, ORIGIN_DEMAND, used=True)
        cache.insert(1, ORIGIN_DEMAND, used=True)
        assert cache.insert(2, ORIGIN_DEMAND, used=True)[0] == 0


# ======================================================================
# Snapshot round trips: every policy, through cache and TLB
# ======================================================================
_OPS = [("i", b) for b in range(40)] + \
       [("l", 3), ("i", 41), ("l", 7), ("v", 5)] + \
       [("i", b * 3) for b in range(20)]


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_cache_roundtrip_mid_sequence(policy):
    def make():
        return SetAssocCache(4096, 4, name="t", policy=policy)

    def drive(cache, op):
        kind, block = op
        if kind == "i":
            cache.insert(block, ORIGIN_PF if block % 3 else ORIGIN_DEMAND,
                         issue_index=block)
        elif kind == "l":
            cache.lookup(block)
        else:
            cache.invalidate(block)

    original = make()
    for op in _OPS[:30]:
        drive(original, op)
    clone = make()
    clone.load_state_dict(original.state_dict())
    assert clone.state_dict() == original.state_dict()
    for op in _OPS[30:]:
        drive(original, op)
        drive(clone, op)
    assert clone.state_dict() == original.state_dict()


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_tlb_roundtrip_mid_sequence(policy):
    def drive(tlb, page):
        if page % 5 == 0:
            tlb.prefetch(page)
        else:
            tlb.translate(page)

    original = InstructionTLB(8, policy=policy)
    pages = [p % 13 for p in range(60)]
    for page in pages[:30]:
        drive(original, page)
    clone = InstructionTLB(8, policy=policy)
    clone.load_state_dict(original.state_dict())
    assert clone.state_dict() == original.state_dict()
    for page in pages[30:]:
        drive(original, page)
        drive(clone, page)
    assert clone.state_dict() == original.state_dict()


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_policy_rejects_stale_snapshot(policy):
    with pytest.raises(ValueError):
        make_policy(policy).load_state_dict({"definitely": "stale"})


def test_cache_snapshot_includes_policy_state():
    cache = _one_set_cache(policy="bip")
    assert "policy" in cache.state_dict()
    tlb = InstructionTLB(8, policy="bip")
    assert "policy" in tlb.state_dict()


# ======================================================================
# I-TLB prefetch path
# ======================================================================
class TestTLBPrefetch:
    def test_install_does_not_count_as_miss(self):
        tlb = InstructionTLB(8)
        walk = tlb.prefetch(5)
        assert walk == tlb.walk_latency
        assert tlb.misses == 0 and tlb.accesses == 0
        assert tlb.pf_probes == 1 and tlb.pf_installs == 1
        assert 5 in tlb

    def test_resident_probe_is_free_and_does_not_promote(self):
        tlb = InstructionTLB(2)
        tlb.translate(1)
        tlb.translate(2)
        assert tlb.prefetch(1) == 0
        assert tlb.pf_installs == 0
        tlb.translate(3)  # evicts the LRU entry — still page 1
        assert 1 not in tlb

    def test_first_demand_touch_is_a_covered_walk(self):
        tlb = InstructionTLB(8)
        tlb.prefetch(5)
        assert tlb.translate(5) == 0
        assert tlb.pf_hits == 1 and tlb.misses == 0
        # Second touch is an ordinary hit, not another covered walk.
        tlb.translate(5)
        assert tlb.pf_hits == 1

    def test_end_to_end_flag_reduces_walks(self, micro_trace_long):
        base = simulate(micro_trace_long, warmup_fraction=0.2)
        cfg = MachineConfig().replace(**{"core.itlb_prefetch": True})
        on = simulate(micro_trace_long, config=cfg, warmup_fraction=0.2)
        assert base.itlb_pf_probes == 0 and base.itlb_pf_installs == 0
        assert on.itlb_pf_probes > 0
        assert on.itlb_misses <= base.itlb_misses

    def test_flag_off_matches_default_exactly(self, micro_trace):
        default = simulate(micro_trace, warmup_fraction=0.2)
        cfg = MachineConfig().replace(**{"core.itlb_prefetch": False,
                                         "core.itlb_policy": "lru",
                                         "hierarchy.policy": "lru"})
        explicit = simulate(micro_trace, config=cfg, warmup_fraction=0.2)
        assert explicit == default


# ======================================================================
# Split hit counters
# ======================================================================
class TestSplitCounters:
    def test_hits_split_sums_to_aggregate(self, micro_trace):
        from repro.prefetchers import make_prefetcher

        stats = simulate(micro_trace, prefetcher=make_prefetcher("eip"),
                         warmup_fraction=0.2)
        assert (stats.l1i_demand_hits + stats.l1i_prefetch_hits
                == stats.l1i_hits)
        assert 0.0 <= stats.prefetch_hit_rate <= 1.0

    def test_unused_prefetch_evictions_tracks_pf_useless(self, micro_trace):
        from repro.prefetchers import make_prefetcher

        stats = simulate(micro_trace, prefetcher=make_prefetcher("eip"),
                         warmup_fraction=0.2)
        assert stats.unused_prefetch_evictions == sum(
            stats.pf_useless[o] for o in (ORIGIN_FDIP, ORIGIN_PF)
        )


# ======================================================================
# Experiments family + CLI surface (tiny scale)
# ======================================================================
class TestPolicySurface:
    def test_cross_product_grid(self):
        from repro.prefetchers.registry import prefetcher_policy_grid

        pairs = prefetcher_policy_grid(("fdip", "eip"), ("lru", "lip"))
        assert pairs == [("fdip", "lru"), ("fdip", "lip"),
                         ("eip", "lru"), ("eip", "lip")]
        with pytest.raises(ValueError, match="policy"):
            prefetcher_policy_grid(policies=("bogus",))
        with pytest.raises(ValueError, match="prefetcher"):
            prefetcher_policy_grid(prefetchers=("bogus",))

    def test_fig20_and_tab06(self):
        from repro.experiments.policies import (
            fig20_policy_grid,
            tab06_policy_summary,
        )

        grid = fig20_policy_grid(
            workloads=("mysql_sibench",), prefetchers=("fdip",),
            policies=("lru", "pf_aware"), scale="tiny",
        )
        cells = grid["mysql_sibench"]["fdip"]
        assert set(cells) == {"lru", "pf_aware"}
        assert cells["lru"]["ipc_vs_lru"] == 1.0
        for cell in cells.values():
            assert cell["demand_hits"] + cell["prefetch_hits"] > 0
            assert "unused_pf_pki" in cell and "itlb_mpki" in cell
        rows = tab06_policy_summary(
            workloads=("mysql_sibench",), prefetchers=("fdip",),
            policies=("lru", "pf_aware"), scale="tiny",
        )
        assert [(r[0], r[1]) for r in rows] == [("fdip", "lru"),
                                                ("fdip", "pf_aware")]
        assert rows[0][2] == 1.0  # lru vs lru

    def test_fig21_itlb_reduction(self):
        from repro.experiments.policies import fig21_itlb_prefetch

        out = fig21_itlb_prefetch(workloads=("mysql_sibench",),
                                  prefetcher="fdip", scale="tiny")
        cell = out["mysql_sibench"]
        assert cell["pf_probes"] > 0
        assert cell["itlb_mpki_on"] <= cell["itlb_mpki_off"]
        assert cell["reduction"] >= 0.0

    def test_cli_list_policies(self, capsys):
        from repro.cli import main

        assert main(["list", "--policies"]) == 0
        out = capsys.readouterr().out
        for name in POLICY_NAMES:
            assert name in out

    def test_cli_sweep_policy_cross_product(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "mysql_sibench", "--prefetchers", "eip",
                   "--policy", "lru", "pf_aware", "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy" in out
        assert "pf_aware" in out

    def test_cli_probe_policy_flag(self, capsys):
        import json

        from repro.cli import main

        rc = main(["probe", "mysql_sibench", "--scale", "tiny",
                   "--prefetcher", "fdip", "--policy", "pf_aware",
                   "--itlb-prefetch", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "pf_aware"
