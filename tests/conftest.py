"""Shared fixtures: micro applications and hand-built traces.

The suite workloads are too large for unit tests, so most tests run on
a *micro* application (two stages, tiny routines) or on hand-assembled
traces from :mod:`tests.helpers`.
"""

import pytest

from repro.cpu import MachineConfig
from repro.workloads.appmodel import AppParams, StageSpec
from repro.workloads.generator import build_app


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the on-disk simulation cache at a per-session temp dir.

    Keeps the suite hermetic: results persisted by earlier local runs
    (or leaked into ``~/.cache``) can never satisfy a test's cache
    lookup, and tests never pollute the user's real cache.
    """
    from repro.experiments import diskcache

    diskcache.set_cache_dir(tmp_path_factory.mktemp("simcache"))
    yield
    diskcache.set_cache_dir(None)


def micro_machine() -> MachineConfig:
    """Caches scaled down so the micro app's ~100 KB working set behaves
    like a server working set against Table-1 caches."""
    return MachineConfig().replace(**{
        "hierarchy.l1i_bytes": 8 * 1024,
        "hierarchy.l2_bytes": 32 * 1024,
        "hierarchy.llc_bytes": 256 * 1024,
    })


@pytest.fixture(scope="session")
def micro_cfg():
    return micro_machine()


def micro_params(seed: int = 7, **overrides) -> AppParams:
    """A tiny but structurally complete application parameter set."""
    params = AppParams(
        name="micro",
        seed=seed,
        stages=[
            StageSpec("alpha", 2, 5.0, shared_frac=0.3),
            StageSpec("beta", 3, 6.0, shared_frac=0.3, skip_prob=0.2),
        ],
        n_request_types=3,
        shared_pool_kb=12.0,
        hot_pool_kb=3.0,
        cold_func_frac=0.5,
        bundle_threshold=6 * 1024,
        base_requests=10,
    )
    for key, value in overrides.items():
        setattr(params, key, value)
    return params


@pytest.fixture(scope="session")
def micro_app():
    return build_app(micro_params())


@pytest.fixture(scope="session")
def micro_trace(micro_app):
    return micro_app.trace(n_requests=12, seed=3)


@pytest.fixture(scope="session")
def micro_trace_long(micro_app):
    return micro_app.trace(n_requests=40, seed=3)
