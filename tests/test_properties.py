"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import StackDistanceTracker
from repro.callgraph import CallGraph, reachable_sets, reachable_sizes
from repro.core.compression import (
    REGION_BLOCKS,
    CompressionBuffer,
    SpatialRegion,
)
from repro.core.metadata import (
    MetadataAddressTable,
    MetadataBuffer,
    SEGMENT_BYTES,
)
from repro.core.record import RecordEngine
from repro.core.replay import ReplayEngine
from repro.isa.loader import BUNDLE_ID_BITS, bundle_id_of
from repro.memory.cache import SetAssocCache

SLOW = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@given(offsets=st.sets(st.integers(0, REGION_BLOCKS - 1), min_size=1))
def test_spatial_region_roundtrip(offsets):
    base = 1000
    region = SpatialRegion(base)
    for off in offsets:
        region.record(base + off)
    assert set(region.blocks()) == {base + off for off in offsets}
    assert region.popcount() == len(offsets)


@SLOW
@given(blocks=st.lists(st.integers(0, 4000), min_size=1, max_size=400))
def test_compression_buffer_loses_nothing(blocks):
    """Every observed block appears in exactly the evicted + resident
    regions after a flush."""
    out = []
    cb = CompressionBuffer(capacity=8, sink=out.append, span=8)
    for b in blocks:
        cb.observe(b)
    cb.flush()
    covered = set()
    for region in out:
        covered.update(region.blocks())
    assert covered == set(blocks)


@SLOW
@given(blocks=st.lists(st.integers(0, 255), min_size=1, max_size=300))
def test_cache_capacity_and_mru_invariants(blocks):
    cache = SetAssocCache(4 * 8 * 64, assoc=4, block_bytes=64)
    for b in blocks:
        if cache.lookup(b) is None:
            cache.insert(b)
        assert len(cache) <= cache.capacity_blocks
        assert b in cache  # most recent block always resident


@SLOW
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 255), st.integers(0, 63)),
        max_size=300,
    )
)
def test_mat_occupancy_and_consistency(ops):
    mat = MetadataAddressTable(n_entries=32, assoc=4)
    shadow = {}
    for op, bundle, head in ops:
        if op == 0:
            evicted = mat.insert(bundle, head)
            shadow[bundle] = head
            if evicted is not None:
                shadow.pop(evicted, None)
        else:
            got = mat.lookup(bundle)
            if got is not None:
                assert shadow.get(bundle) == got
        assert len(mat) <= mat.n_entries


@SLOW
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40
    ),
    sizes=st.lists(st.integers(1, 1000), min_size=12, max_size=12),
)
def test_reachable_sizes_match_sets(edges, sizes):
    g = CallGraph()
    for i, size in enumerate(sizes):
        g.add_node(f"n{i}", size)
    for a, b in edges:
        g.add_edge(f"n{a}", f"n{b}")
    by_dp = reachable_sizes(g)
    by_sets = reachable_sets(g)
    for name, reached in by_sets.items():
        assert by_dp[name] == sum(g.sizes[m] for m in reached)


@SLOW
@given(accesses=st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_stack_distance_matches_naive(accesses):
    tracker = StackDistanceTracker(len(accesses) + 1)
    history = []
    for block in accesses:
        got = tracker.access(block)
        if block in history:
            idx = len(history) - 1 - history[::-1].index(block)
            expected = len(set(history[idx + 1:]))
        else:
            expected = -1
        history.append(block)
        assert got == expected


@SLOW
@given(
    bases=st.lists(st.integers(0, 10_000), min_size=1, max_size=150),
    bundle_id=st.integers(0, (1 << 24) - 1),
)
def test_record_replay_roundtrip(bases, bundle_id):
    """Whatever the record engine stores, replay returns verbatim."""
    buf = MetadataBuffer(64 * SEGMENT_BYTES)
    rec = RecordEngine(buf)
    head = rec.begin(bundle_id)
    for base in bases:
        rec.observe_instructions(10)
        rec.observe_region(SpatialRegion(base, 0b1))
    result = rec.end()
    assert not result.truncated
    rep = ReplayEngine(buf)
    assert rep.start(bundle_id, head)
    got = []
    for view in rep.take_eligible(1 << 50):
        for region in view.regions:
            got.extend(region.blocks())
    assert got == bases


@given(addr=st.integers(0, (1 << 48) - 1))
def test_bundle_id_in_range(addr):
    assert 0 <= bundle_id_of(addr) < (1 << BUNDLE_ID_BITS)


@SLOW
@given(
    headers=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=6,
        ),
        min_size=1, max_size=4,
    ),
    n_rows=st.integers(0, 5),
)
def test_format_table_rectangular(headers, n_rows):
    from repro.analysis.reporting import format_table

    rows = [[f"v{r}{c}" for c in range(len(headers))]
            for r in range(n_rows)]
    out = format_table(headers, rows)
    lines = out.splitlines()
    assert len(lines) == 2 + n_rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1
