"""Integration tests for the Hierarchical Prefetcher on micro workloads."""

import pytest

from repro.core.prefetcher import HierarchicalPrefetcher, HPConfig
from repro.cpu import simulate
from repro.memory.cache import ORIGIN_PF


class TestConfig:
    def test_default_matches_paper(self):
        cfg = HPConfig()
        assert cfg.compression_entries == 16
        assert cfg.mat_entries == 512
        assert cfg.metadata_buffer_bytes == 512 * 1024
        assert cfg.target_level == "l1"

    def test_bad_target_level(self):
        with pytest.raises(ValueError):
            HierarchicalPrefetcher(HPConfig(target_level="l3"))


class TestRecordReplayLifecycle:
    def test_bundles_triggered_and_replayed(self, micro_trace):
        pf = HierarchicalPrefetcher()
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.extra["hp_bundles_triggered"] > 0
        assert stats.extra["hp_replays_started"] > 0
        # After warmup every recurring Bundle should hit in the MAT.
        assert stats.extra["hp_mat_hit_rate"] > 0.8

    def test_issues_useful_prefetches(self, micro_trace):
        pf = HierarchicalPrefetcher()
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.pf_issued[ORIGIN_PF] > 0
        assert stats.pf_useful[ORIGIN_PF] > 0
        assert stats.accuracy(ORIGIN_PF) > 0.3

    def test_reduces_misses_and_latency(self, micro_trace_long, micro_cfg):
        # At micro scale the IPC win is noisy (prefetch-queue contention
        # competes with the small covered latencies), so assert the
        # paper's structural claims: fewer demand misses and less total
        # exposed miss latency (the Fig. 11 metric).
        base = simulate(micro_trace_long, config=micro_cfg)
        hp = simulate(micro_trace_long, config=micro_cfg,
                      prefetcher=HierarchicalPrefetcher())
        assert hp.l1i_misses < base.l1i_misses
        assert (hp.exposed_latency["LLC"] + hp.exposed_latency["DRAM"]
                < base.exposed_latency["LLC"] + base.exposed_latency["DRAM"])

    def test_metadata_traffic_charged(self, micro_trace):
        pf = HierarchicalPrefetcher()
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.metadata_write_bytes > 0
        assert stats.metadata_read_bytes > 0

    def test_deterministic(self, micro_trace):
        a = simulate(micro_trace, prefetcher=HierarchicalPrefetcher())
        b = simulate(micro_trace, prefetcher=HierarchicalPrefetcher())
        assert a.cycles == b.cycles
        assert a.pf_issued[ORIGIN_PF] == b.pf_issued[ORIGIN_PF]

    def test_large_distance(self, micro_trace_long):
        """HP's bulk replay runs far ahead of fine-grained prefetchers."""
        from repro.prefetchers import EFetchPrefetcher

        hp = simulate(micro_trace_long, prefetcher=HierarchicalPrefetcher())
        ef = simulate(micro_trace_long, prefetcher=EFetchPrefetcher())
        if ef.distance_n[ORIGIN_PF]:
            assert hp.avg_distance(ORIGIN_PF) > ef.avg_distance(ORIGIN_PF)


class TestVariants:
    def test_l2_target(self, micro_trace_long, micro_cfg):
        pf = HierarchicalPrefetcher(HPConfig(target_level="l2"))
        stats = simulate(micro_trace_long, config=micro_cfg, prefetcher=pf)
        assert stats.pf_issued[ORIGIN_PF] > 0
        # L2-directed prefetches cover at the L2, not the L1.
        assert stats.covered_l2[ORIGIN_PF] > 0

    def test_unpaced_mode(self, micro_trace):
        pf = HierarchicalPrefetcher(HPConfig(paced=False))
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.pf_issued[ORIGIN_PF] > 0

    def test_no_supersede_mode(self, micro_trace):
        pf = HierarchicalPrefetcher(HPConfig(supersede=False))
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.pf_issued[ORIGIN_PF] > 0

    def test_track_bundles(self, micro_trace):
        pf = HierarchicalPrefetcher(HPConfig(track_bundles=True))
        stats = simulate(micro_trace, prefetcher=pf)
        assert "hp_avg_footprint_kb" in stats.extra
        assert "hp_avg_jaccard" in stats.extra
        assert 0.0 < stats.extra["hp_avg_jaccard"] <= 1.0
        assert "hp_avg_exec_cycles" in stats.extra

    def test_tiny_mat_still_works(self, micro_trace):
        pf = HierarchicalPrefetcher(HPConfig(mat_entries=8, mat_assoc=2))
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.extra["hp_bundles_triggered"] > 0

    def test_tiny_metadata_buffer_reclaims(self, micro_trace):
        from repro.core.metadata import SEGMENT_BYTES

        pf = HierarchicalPrefetcher(
            HPConfig(metadata_buffer_bytes=4 * SEGMENT_BYTES)
        )
        stats = simulate(micro_trace, prefetcher=pf)
        assert pf.buffer.reclaims > 0
        # Reclaim invalidates MAT entries; replay rate drops but nothing
        # crashes and some replays still happen.
        assert stats.extra["hp_bundles_triggered"] > 0

    def test_bigger_buffer_not_worse(self, micro_trace_long):
        small = simulate(
            micro_trace_long,
            prefetcher=HierarchicalPrefetcher(
                HPConfig(metadata_buffer_bytes=16 * 1024)
            ),
        )
        big = simulate(
            micro_trace_long,
            prefetcher=HierarchicalPrefetcher(
                HPConfig(metadata_buffer_bytes=512 * 1024)
            ),
        )
        assert big.ipc >= small.ipc * 0.98
