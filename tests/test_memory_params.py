"""Parameter-validation and geometry tests for hierarchy and configs."""

import pytest

from repro.cpu import MachineConfig
from repro.cpu.stats import SimStats
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy


class TestHierarchyParams:
    def test_table1_defaults(self):
        p = HierarchyParams()
        assert p.l1i_bytes == 32 * 1024
        assert p.l1i_assoc == 8
        assert p.l2_bytes == 512 * 1024
        assert p.llc_bytes == 2 * 1024 * 1024
        assert p.llc_assoc == 16
        assert p.lat_l2 == 14
        assert p.lat_llc == 50

    def test_cache_geometry_from_params(self):
        h = MemoryHierarchy(HierarchyParams(), SimStats())
        assert h.l1i.capacity_blocks == 512
        assert h.l2.capacity_blocks == 8192
        assert h.llc.capacity_blocks == 32768

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(HierarchyParams(l1i_bytes=1000), SimStats())


class TestMachineConfig:
    def test_table1_core_defaults(self):
        cfg = MachineConfig()
        assert cfg.core.commit_width == 5
        assert cfg.frontend.ftq_entries == 24
        assert cfg.frontend.btb_entries == 8192

    def test_nested_replace_chains(self):
        cfg = MachineConfig().replace(
            **{"hierarchy.l1i_bytes": 64 * 1024}
        ).replace(**{"core.commit_width": 4})
        assert cfg.hierarchy.l1i_bytes == 64 * 1024
        assert cfg.core.commit_width == 4

    def test_replace_returns_new_object(self):
        a = MachineConfig()
        b = a.replace(**{"core.commit_width": 8})
        assert a is not b
        assert a.core is not b.core

    def test_frontend_params_independent(self):
        a = MachineConfig()
        b = a.replace(**{"frontend.btb_entries": None})
        assert a.frontend.btb_entries == 8192
        assert b.frontend.btb_entries is None
