"""The layered simulation-result cache (runner + diskcache).

Covers the cache-key schema (seed/warmup/overrides/pf_kwargs must all
be distinguished), exact SimStats round-trips through the on-disk
store, checksum/quarantine handling of corrupted or stale entries, and
the headline guarantee: a fresh process re-simulates nothing that is
already on disk.
"""

import hashlib
import os
import pickle
import subprocess
import sys

import pytest

from repro.cpu.stats import SimStats
from repro.experiments import diskcache
from repro.experiments.runner import (
    cache_key,
    clear_run_cache,
    reset_run_cache_stats,
    run_baseline,
    run_cache_stats,
    run_prefetcher,
)

WORKLOAD = "mysql_sibench"


def _read_payload(path):
    """Unwrap an entry file's checksum envelope to its payload dict."""
    envelope = pickle.loads(path.read_bytes())
    return pickle.loads(envelope["payload"])


def _write_payload(path, payload):
    """Re-wrap ``payload`` in a valid checksum envelope at ``path``."""
    blob = pickle.dumps(payload)
    path.write_bytes(pickle.dumps({
        "sha256": hashlib.sha256(blob).hexdigest(), "payload": blob,
    }))


@pytest.fixture()
def cache_dir(tmp_path):
    """A private disk-cache root for one test, restored afterwards."""
    previous = diskcache.set_cache_dir(tmp_path)
    clear_run_cache()
    reset_run_cache_stats()
    yield tmp_path
    clear_run_cache()
    diskcache.set_cache_dir(previous)


class TestCacheKey:
    def test_seed_in_key(self):
        # The original bug: seeds aliased to one cached result.
        assert (cache_key(WORKLOAD, "eip", seed=1)
                != cache_key(WORKLOAD, "eip", seed=2))

    def test_warmup_in_key(self):
        assert (cache_key(WORKLOAD, "eip", warmup=0.45)
                != cache_key(WORKLOAD, "eip", warmup=0.5))

    def test_overrides_in_key(self):
        assert (cache_key(WORKLOAD, None)
                != cache_key(WORKLOAD, None,
                             overrides={"hierarchy.perfect_l1i": True}))

    def test_pf_kwargs_in_key(self):
        assert (cache_key(WORKLOAD, "mana")
                != cache_key(WORKLOAD, "mana", pf_kwargs={"lookahead": 3}))

    def test_track_and_prefetcher_in_key(self):
        assert (cache_key(WORKLOAD, "eip")
                != cache_key(WORKLOAD, "eip", track_block_misses=True))
        assert cache_key(WORKLOAD, None) != cache_key(WORKLOAD, "eip")

    def test_key_is_stable(self):
        assert cache_key(WORKLOAD, "eip") == cache_key(WORKLOAD, "eip")


class TestSeedNotAliased:
    def test_different_seeds_cached_separately(self, cache_dir):
        a, _ = run_prefetcher(WORKLOAD, None, scale="tiny", seed=1)
        b, _ = run_prefetcher(WORKLOAD, None, scale="tiny", seed=2)
        assert a is not b
        # Each seed keeps returning its own result.
        a2, _ = run_prefetcher(WORKLOAD, None, scale="tiny", seed=1)
        b2, _ = run_prefetcher(WORKLOAD, None, scale="tiny", seed=2)
        assert a2 is a and b2 is b

    def test_baseline_forwards_seed(self, cache_dir):
        run_baseline(WORKLOAD, scale="tiny", seed=3)
        stats = run_cache_stats()
        assert stats.simulations == 1
        # A prefetcher run on the same seed reuses nothing of seed=1's
        # world but the baseline key must match run_prefetcher's.
        again, _ = run_prefetcher(WORKLOAD, None, scale="tiny", seed=3)
        assert run_cache_stats().memory_hits == stats.memory_hits + 1


def _make_stats() -> SimStats:
    stats = SimStats()
    stats.instructions = 12345
    stats.cycles = 6789.5
    stats.l1i_misses = 42
    stats.pf_issued = [1, 2, 3]
    stats.served_by = {"L2": 7, "LLC": 8, "DRAM": 9}
    stats.extra = {"bundle_count": 3.0}
    return stats


class TestSimStatsRoundTrip:
    def test_state_dict_exact(self):
        stats = _make_stats()
        clone = SimStats.from_state(stats.state_dict())
        assert clone == stats
        assert clone.state_dict() == stats.state_dict()

    def test_from_state_copies_containers(self):
        stats = _make_stats()
        clone = SimStats.from_state(stats.state_dict())
        clone.pf_issued[0] += 1
        clone.served_by["L2"] += 1
        assert stats.pf_issued[0] == 1
        assert stats.served_by["L2"] == 7

    def test_from_state_rejects_stale_schema(self):
        state = _make_stats().state_dict()
        state["brand_new_counter"] = 1
        with pytest.raises(ValueError):
            SimStats.from_state(state)
        state = _make_stats().state_dict()
        del state["cycles"]
        with pytest.raises(ValueError):
            SimStats.from_state(state)

    def test_disk_round_trip_exact(self, cache_dir, micro_trace):
        from repro.cpu import simulate

        real = simulate(micro_trace)
        cache = diskcache.get_cache()
        cache.put("k", {"schema": diskcache.SCHEMA_VERSION, "key": "k",
                        "stats": real.state_dict(), "miss_map": {4096: 2}})
        payload = cache.get("k")
        loaded = SimStats.from_state(payload["stats"])
        assert loaded == real
        assert payload["miss_map"] == {4096: 2}
        assert loaded.ipc == real.ipc


class TestDiskCacheLayer:
    def test_run_persists_and_reloads(self, cache_dir):
        a, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert len(diskcache.get_cache()) == 1
        clear_run_cache()  # memory only; disk survives
        reset_run_cache_stats()
        b, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        stats = run_cache_stats()
        assert stats.simulations == 0 and stats.disk_hits == 1
        assert a is not b and a == b

    def test_corrupted_entry_resimulated_and_quarantined(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_cache().entries()
        path.write_bytes(b"\x00garbage\xff")
        clear_run_cache()
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.simulations == 1  # ignored, not crashed
        assert s.cache_corrupt == 1
        quarantined = list(diskcache.get_cache().quarantined())
        assert [p.name for p in quarantined] == [path.name + ".corrupt"]
        # The fresh simulation rewrote a good entry under the live name.
        assert len(diskcache.get_cache()) == 1

    def test_bitflipped_entry_fails_checksum(self, cache_dir):
        from repro.experiments.faults import BITFLIP, corrupt_file

        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_cache().entries()
        # Flip one byte deep in the payload: the pickle may still load,
        # only the checksum can catch it.
        assert corrupt_file(path, BITFLIP, offset=path.stat().st_size // 2)
        clear_run_cache()
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.simulations == 1
        assert s.cache_corrupt == 1
        assert list(diskcache.get_cache().quarantined())

    def test_stale_schema_entry_resimulated(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_cache().entries()
        payload = _read_payload(path)
        payload["schema"] = diskcache.SCHEMA_VERSION + 1
        _write_payload(path, payload)
        clear_run_cache()
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.simulations == 1
        assert s.cache_corrupt == 0  # stale is not corrupt

    def test_legacy_unwrapped_entry_still_served(self, cache_dir):
        # Entries written before the checksum envelope existed are a
        # bare pickled payload; they must keep hitting.
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_cache().entries()
        path.write_bytes(pickle.dumps(_read_payload(path)))
        clear_run_cache()
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.disk_hits == 1 and s.simulations == 0
        assert s.cache_corrupt == 0

    def test_wrong_key_payload_ignored(self, cache_dir):
        # A digest collision (or a hand-moved file) must not serve the
        # wrong point's stats.
        key = cache_key(WORKLOAD, "eip", scale="tiny")
        diskcache.get_cache().put(key, {
            "schema": diskcache.SCHEMA_VERSION, "key": "someone-else",
            "stats": _make_stats().state_dict(), "miss_map": None,
        })
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert run_cache_stats().simulations == 1

    def test_no_cache_skips_both_layers(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny", use_cache=False)
        assert len(diskcache.get_cache()) == 0
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny", use_cache=False)
        assert run_cache_stats().simulations == 1

    def test_clear_run_cache_disk(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert len(diskcache.get_cache()) == 1
        clear_run_cache(disk=True)
        assert len(diskcache.get_cache()) == 0
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert run_cache_stats().simulations == 1

    def test_disable_via_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert len(diskcache.get_cache()) == 0


class TestDiskCacheStore:
    def test_atomic_layout(self, tmp_path):
        cache = diskcache.DiskCache(tmp_path)
        cache.put("abc", {"v": 1})
        path = cache.path_for("abc")
        assert path.is_file()
        assert path.parent.parent == tmp_path
        assert path.stem == diskcache.key_digest("abc")
        assert not list(tmp_path.rglob("*.tmp"))

    def test_missing_root_is_empty(self, tmp_path):
        cache = diskcache.DiskCache(tmp_path / "nope")
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.clear() == 0


class TestWarmupCheckpoint:
    """PR 2: the runner persists a post-warmup machine snapshot keyed by
    (trace, config fingerprint, prefetcher) and later runs of the same
    point resume from it instead of re-simulating the warmup window —
    with *exactly* equal SimStats."""

    def test_cold_run_writes_checkpoint(self, cache_dir):
        run_prefetcher(WORKLOAD, "hierarchical", scale="tiny")
        s = run_cache_stats()
        assert s.warmup_writes == 1 and s.warmup_hits == 0
        assert len(diskcache.get_warmup_cache()) == 1
        # Warmup checkpoints are invisible to the result store.
        assert len(diskcache.get_cache()) == 1

    def test_tracked_rerun_skips_warmup_and_is_exact(self, cache_dir):
        # track_block_misses changes the *result* key but not the
        # *warmup* key, so the tracked re-run resumes the checkpoint.
        cold, _ = run_prefetcher(WORKLOAD, "hierarchical", scale="tiny")
        warm, miss_map = run_prefetcher(
            WORKLOAD, "hierarchical", scale="tiny", track_block_misses=True)
        s = run_cache_stats()
        assert s.simulations == 2 and s.warmup_hits == 1
        assert s.warmup_writes == 1  # resumed run does not re-store
        assert warm == cold
        assert miss_map  # tracking still collected from measurement

    def test_checkpointed_rerun_equals_cold(self, cache_dir):
        cold, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        # Drop the cached *result* but keep the warmup checkpoint.
        clear_run_cache()
        diskcache.get_cache().clear()
        assert len(diskcache.get_warmup_cache()) == 1
        reset_run_cache_stats()
        warm, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.simulations == 1 and s.warmup_hits == 1
        assert warm == cold

    def test_corrupted_checkpoint_falls_back_cold(self, cache_dir):
        cold, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_warmup_cache().entries()
        payload = _read_payload(path)
        # Mangle the machine state so resume() raises mid-load.
        payload["state"]["components"] = {"not": "the machine"}
        _write_payload(path, payload)
        clear_run_cache()
        diskcache.get_cache().clear()
        reset_run_cache_stats()
        warm, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.warmup_hits == 0 and s.simulations == 1
        assert warm == cold  # fell back to a correct cold run

    def test_truncated_checkpoint_falls_back_cold(self, cache_dir):
        # A half-written (killed process) checkpoint file: the disk
        # layer quarantines it and the run degrades to a cold warmup
        # with bit-identical stats.
        cold, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        (path,) = diskcache.get_warmup_cache().entries()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        clear_run_cache()
        diskcache.get_cache().clear()
        reset_run_cache_stats()
        warm, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.warmup_hits == 0 and s.simulations == 1
        assert s.cache_corrupt == 1
        assert warm == cold
        assert list(diskcache.get_warmup_cache().quarantined())
        # The cold run re-persisted a fresh, valid checkpoint.
        assert s.warmup_writes == 1

    def test_arbitrary_resume_exception_falls_back_cold(
            self, cache_dir, monkeypatch):
        # The guard must cover *any* exception type out of resume(),
        # not just the known stale-snapshot signatures.
        from repro.cpu.simulator import FrontEndSimulator

        cold, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        clear_run_cache()
        diskcache.get_cache().clear()
        reset_run_cache_stats()

        def explode(self, trace, state):
            raise ZeroDivisionError("boom mid-load")

        monkeypatch.setattr(FrontEndSimulator, "resume", explode)
        warm, _ = run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.warmup_hits == 0 and s.simulations == 1
        assert warm == cold

    def test_config_change_misses_checkpoint(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        reset_run_cache_stats()
        run_prefetcher(WORKLOAD, "eip", scale="tiny",
                       overrides={"hierarchy.l1i_bytes": 16 * 1024})
        s = run_cache_stats()
        assert s.warmup_hits == 0 and s.warmup_writes == 1

    def test_disable_via_env_skips_checkpoints(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        s = run_cache_stats()
        assert s.warmup_writes == 0
        assert len(diskcache.get_warmup_cache()) == 0

    def test_no_cache_skips_checkpoints(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny", use_cache=False)
        assert run_cache_stats().warmup_writes == 0
        assert len(diskcache.get_warmup_cache()) == 0

    def test_clear_run_cache_disk_clears_checkpoints(self, cache_dir):
        run_prefetcher(WORKLOAD, "eip", scale="tiny")
        assert len(diskcache.get_warmup_cache()) == 1
        clear_run_cache(disk=True)
        assert len(diskcache.get_warmup_cache()) == 0


_SECOND_PROCESS = """
import os, sys
from repro.experiments.runner import run_prefetcher, run_cache_stats
run_prefetcher("mysql_sibench", None, scale="tiny")
run_prefetcher("mysql_sibench", "eip", scale="tiny")
s = run_cache_stats()
print(f"SIMULATIONS={s.simulations} DISK={s.disk_hits}")
"""


class TestFreshProcessReuse:
    def test_second_process_zero_simulations(self, cache_dir):
        """The acceptance guarantee: once results are on disk, a brand
        new process (a re-run benchmark script) simulates nothing."""
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ,
                   REPRO_CACHE_DIR=str(cache_dir),
                   PYTHONPATH=src + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _SECOND_PROCESS],
                capture_output=True, text=True, env=env, timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            runs.append(proc.stdout.strip().splitlines()[-1])
        assert runs[0] == "SIMULATIONS=2 DISK=0"
        assert runs[1] == "SIMULATIONS=0 DISK=2"
