"""Tests for the application generator and the workload suite."""

import pytest

from repro.isa.instructions import BranchKind
from repro.workloads.appmodel import zipf_weights
from repro.workloads.generator import generate_binary
from repro.workloads.suite import (
    SCALES,
    WORKLOAD_NAMES,
    requests_for,
    workload_params,
)
from tests.conftest import micro_params


class TestZipf:
    def test_normalized(self):
        w = zipf_weights(6, 0.9)
        assert abs(sum(w) - 1.0) < 1e-12

    def test_monotone_decreasing(self):
        w = zipf_weights(8, 1.1)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_alpha_zero_uniform(self):
        w = zipf_weights(4, 0.0)
        assert all(abs(x - 0.25) < 1e-12 for x in w)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestGenerator:
    def test_deterministic(self):
        a, _ = generate_binary(micro_params())
        b, _ = generate_binary(micro_params())
        assert len(a) == len(b)
        assert a.text_size == b.text_size
        assert list(a.functions) == list(b.functions)

    def test_seed_changes_binary(self):
        a, _ = generate_binary(micro_params(seed=7))
        b, _ = generate_binary(micro_params(seed=8))
        assert a.text_size != b.text_size

    def test_binary_validates(self):
        binary, _ = generate_binary(micro_params())
        binary.validate()  # no raise

    def test_structure_present(self, micro_app):
        binary = micro_app.binary
        assert "main" in binary
        assert "alpha_dispatch" in binary
        assert "alpha_r0_f0" in binary
        assert "alpha_skip" in binary
        assert any(n.startswith("lib_") for n in binary.functions)
        assert any(n.startswith("hot_") for n in binary.functions)
        assert any(n.startswith("cold_") for n in binary.functions)

    def test_dispatchers_are_icalls(self, micro_app):
        disp = micro_app.binary.get("alpha_dispatch")
        kinds = [b.kind for b in disp.blocks]
        assert BranchKind.ICALL in kinds

    def test_route_map_complete(self, micro_app):
        for routes in micro_app.route_map:
            for stage in micro_app.params.stages:
                assert stage.name in routes
                assert routes[stage.name] in micro_app.binary

    def test_text_size_near_target(self, micro_app):
        params = micro_app.params
        floor = (params.shared_pool_kb + params.hot_pool_kb) * 1024
        assert micro_app.binary.text_size > floor


class TestSuite:
    def test_eleven_workloads(self):
        assert len(WORKLOAD_NAMES) == 11
        expected = {
            "beego", "gin", "echo", "caddy", "dgraph", "gorm",
            "mysql_sysbench", "tidb_sysbench", "tidb_tpcc",
            "mysql_ycsb", "mysql_sibench",
        }
        assert set(WORKLOAD_NAMES) == expected

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            workload_params("redis")

    def test_scales(self):
        assert set(SCALES) == {"tiny", "bench", "full"}
        for name in WORKLOAD_NAMES:
            assert (requests_for(name, "tiny")
                    <= requests_for(name, "bench")
                    <= requests_for(name, "full"))

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError, match="unknown scale"):
            requests_for("beego", "huge")

    def test_params_have_personalities(self):
        sizes = {workload_params(n).total_routine_kb()
                 for n in WORKLOAD_NAMES}
        assert len(sizes) > 5  # not all identical

    def test_build_one_suite_app(self):
        from repro.workloads.cache import get_application

        app = get_application("mysql_sibench")
        assert app.program.n_bundles > 5
        assert len(app.binary) > 1000


class TestTraceBuilder:
    def test_deterministic(self, micro_app):
        a = micro_app.trace(8, seed=5)
        b = micro_app.trace(8, seed=5)
        assert a.pc == b.pc
        assert a.taken == b.taken

    def test_seed_varies(self, micro_app):
        a = micro_app.trace(8, seed=5)
        b = micro_app.trace(8, seed=6)
        assert a.pc != b.pc or a.taken != b.taken

    def test_request_count(self, micro_app):
        trace = micro_app.trace(9, seed=1)
        assert len(trace.requests) == 9

    def test_rejects_zero_requests(self, micro_app):
        with pytest.raises(ValueError):
            micro_app.trace(0)

    def test_call_return_balance(self, micro_trace):
        calls = sum(1 for k in micro_trace.kind
                    if k in (int(BranchKind.CALL), int(BranchKind.ICALL)))
        rets = sum(1 for k in micro_trace.kind
                   if k == int(BranchKind.RET))
        assert abs(calls - rets) <= 64  # open frames at trace end

    def test_control_flow_consistent(self, micro_trace):
        """Every record's target equals the next record's pc."""
        for i in range(len(micro_trace) - 1):
            assert micro_trace.target[i] == micro_trace.pc[i + 1], (
                f"discontinuity at {i}"
            )

    def test_tagged_only_on_calls_and_returns(self, micro_trace):
        allowed = {int(BranchKind.CALL), int(BranchKind.ICALL),
                   int(BranchKind.RET)}
        for i in range(len(micro_trace)):
            if micro_trace.tagged[i]:
                assert micro_trace.kind[i] in allowed

    def test_has_tagged_instructions(self, micro_trace):
        assert sum(micro_trace.tagged) > 0

    def test_stage_spans_cover_stages(self, micro_trace):
        names = {s[2] for s in micro_trace.stage_spans}
        assert names == {"alpha", "beta"}
        for start, end, _stage, rtype in micro_trace.stage_spans:
            assert 0 <= start < end <= len(micro_trace)
            assert 0 <= rtype < 3

    def test_footprint_helper(self, micro_trace):
        fp = micro_trace.footprint(0, 100)
        assert fp
        assert all(isinstance(b, int) for b in fp)

    def test_request_of(self, micro_trace):
        for (start, rtype) in micro_trace.requests:
            assert micro_trace.request_of(start) == rtype

    def test_preheat_cycles_types(self, micro_app):
        trace = micro_app.trace(20, seed=2)
        n_types = micro_app.n_request_types
        preheat_types = [rt for _, rt in trace.requests[:n_types]]
        assert preheat_types == list(range(n_types))


class TestTraceCache:
    def test_get_trace_cached(self):
        from repro.workloads.cache import get_trace

        a = get_trace("mysql_sibench", scale="tiny")
        b = get_trace("mysql_sibench", scale="tiny")
        assert a is b

    def test_trace_cache_bound_env(self, monkeypatch):
        from repro.workloads import cache

        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert cache._trace_cache_max() == 6
        monkeypatch.setenv("REPRO_TRACE_CACHE", "16")
        assert cache._trace_cache_max() == 16
        monkeypatch.setenv("REPRO_TRACE_CACHE", "junk")
        assert cache._trace_cache_max() == 6
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert cache._trace_cache_max() == 1
