"""Unit/integration tests for the front-end timing simulator."""

import pytest

from repro.cpu import FrontEndSimulator, MachineConfig, simulate
from repro.prefetchers.base import InstructionPrefetcher
from tests.helpers import linear_trace, looping_trace


class TestBasics:
    def test_empty_trace_rejected(self):
        from repro.workloads.trace import Trace

        with pytest.raises(ValueError):
            FrontEndSimulator().run(Trace())

    def test_bad_warmup_fraction(self):
        with pytest.raises(ValueError):
            FrontEndSimulator().run(linear_trace(8), warmup_fraction=1.0)

    def test_instruction_accounting(self):
        trace = linear_trace(100, ninstr=5)
        stats = simulate(trace, warmup_fraction=0.0)
        assert stats.instructions == 500
        assert stats.blocks == 100

    def test_cycles_at_least_width_limited(self):
        trace = linear_trace(100, ninstr=5)
        stats = simulate(trace, warmup_fraction=0.0)
        width = MachineConfig().core.commit_width
        assert stats.cycles >= 500 / width
        assert 0 < stats.ipc <= width

    def test_warmup_excluded_from_stats(self):
        trace = looping_trace(n_blocks=32, repeats=10)
        full = simulate(trace, warmup_fraction=0.0)
        warm = simulate(trace, warmup_fraction=0.5)
        assert warm.instructions < full.instructions
        # The warmed window re-executes hot code: fewer misses per instr.
        assert warm.l1i_mpki <= full.l1i_mpki

    def test_deterministic(self, micro_trace):
        a = simulate(micro_trace)
        b = simulate(micro_trace)
        assert a.cycles == b.cycles
        assert a.l1i_misses == b.l1i_misses
        assert a.cond_mispredicts == b.cond_mispredicts

    def test_perfect_l1i_faster(self, micro_trace):
        base = simulate(micro_trace)
        cfg = MachineConfig().replace(**{"hierarchy.perfect_l1i": True})
        perfect = simulate(micro_trace, config=cfg)
        assert perfect.ipc > base.ipc
        assert perfect.l1i_misses == 0

    def test_loop_trace_mostly_hits_after_warmup(self):
        trace = looping_trace(n_blocks=16, repeats=20)
        stats = simulate(trace, warmup_fraction=0.5)
        assert stats.l1i_mpki < 1.0

    def test_streaming_trace_misses(self):
        trace = linear_trace(4000, ninstr=16)  # 4000 distinct blocks
        stats = simulate(trace, warmup_fraction=0.0)
        assert stats.l1i_misses > 0


class TestConfigEffects:
    def test_itlb_miss_stalls(self):
        trace = linear_trace(2000, ninstr=16)  # spans many pages
        small = MachineConfig().replace(**{"core.itlb_entries": 2})
        a = simulate(trace, config=small, warmup_fraction=0.0)
        assert a.itlb_misses > 0
        assert a.stall_itlb > 0

    def test_bigger_l1i_fewer_misses(self, micro_trace):
        base = simulate(micro_trace)
        big = simulate(
            micro_trace,
            config=MachineConfig().replace(
                **{"hierarchy.l1i_bytes": 256 * 1024}
            ),
        )
        assert big.l1i_misses <= base.l1i_misses

    def test_infinite_btb_fewer_btb_misses(self, micro_trace):
        base = simulate(micro_trace)
        inf = simulate(
            micro_trace,
            config=MachineConfig().replace(**{"frontend.btb_entries": None}),
        )
        assert inf.btb_misses <= base.btb_misses
        assert inf.ipc >= base.ipc

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(AttributeError):
            MachineConfig().replace(**{"hierarchy.nonsense": 1})

    def test_replace_does_not_mutate_original(self):
        cfg = MachineConfig()
        cfg.replace(**{"hierarchy.l1i_bytes": 1024})
        assert cfg.hierarchy.l1i_bytes == 32 * 1024

    def test_track_block_misses(self, micro_trace):
        sim = FrontEndSimulator(track_block_misses=True)
        sim.run(micro_trace)
        assert isinstance(sim.hierarchy.l2_miss_map, dict)


class RecordingPrefetcher(InstructionPrefetcher):
    name = "recording"

    def reset(self):
        self.commits = 0
        self.misses = 0
        self.mispredicts = 0
        self.measurement_started = False
        self.measurement_ended = False

    def on_commit(self, i, now):
        self.commits += 1

    def on_miss(self, block, i, stall):
        self.misses += 1

    def on_mispredict(self, i):
        self.mispredicts += 1

    def on_measurement_start(self):
        self.measurement_started = True

    def on_measurement_end(self):
        self.measurement_ended = True
        self.stats.extra["recorded_commits"] = self.commits


class TestPrefetcherHooks:
    def test_hooks_invoked(self, micro_trace):
        pf = RecordingPrefetcher()
        stats = simulate(micro_trace, prefetcher=pf)
        assert pf.commits == len(micro_trace)
        assert pf.misses > 0
        assert pf.measurement_started and pf.measurement_ended
        assert stats.extra["recorded_commits"] == pf.commits

    def test_mispredict_hook(self, micro_trace):
        pf = RecordingPrefetcher()
        stats = simulate(micro_trace, prefetcher=pf)
        assert pf.mispredicts > 0
        assert pf.mispredicts <= (
            stats.cond_mispredicts + stats.indirect_mispredicts
            + stats.ras_mispredicts + 10_000
        )
