"""Figure 10: percentage of prefetches arriving late (MSHR hits).

Paper: 29% of EFetch's, 13% of MANA's, 7% of EIP's and only 3% of HP's
prefetches arrive late — Bundles are so large that lateness is confined
to the cold start.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import PREFETCHERS, fig10_late_prefetches
from repro.workloads.suite import WORKLOAD_NAMES


def test_fig10_late_prefetches(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig10_late_prefetches(
            workloads=WORKLOAD_NAMES, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [w] + [f"{result[w][p]:.1%}" for p in PREFETCHERS]
        for w in WORKLOAD_NAMES
    ]
    means = {
        p: sum(result[w][p] for w in WORKLOAD_NAMES) / len(WORKLOAD_NAMES)
        for p in PREFETCHERS
    }
    rows.append(["MEAN"] + [f"{means[p]:.1%}" for p in PREFETCHERS])
    emit(
        "Figure 10 — late prefetches (fraction of useful prefetches)",
        format_table(["workload"] + list(PREFETCHERS), rows),
    )
    # HP's bulk replay leaves almost no late prefetches.
    assert means["hierarchical"] < 0.10
    assert means["hierarchical"] <= min(means.values()) + 1e-9
