"""Figure 4: Jaccard similarity of trigger footprints vs. footprint size.

Paper: for EFetch/MANA/EIP trigger models, the similarity between the
footprints following adjacent occurrences of the same trigger decays as
the footprint grows — all three fall below 0.5 by 64 blocks, which is
why deep fine-grained prefetching loses accuracy.  EFetch's richer
signature keeps it above MANA/EIP.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig04_trigger_jaccard

SIZES = (16, 32, 64, 128, 256, 512)
WORKLOADS = ("beego", "caddy", "tidb_tpcc")


def test_fig04_trigger_jaccard(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig04_trigger_jaccard(
            footprint_sizes=SIZES, workloads=WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [model] + [f"{v:.3f}" for v in series]
        for model, series in result.items()
    ]
    emit(
        "Figure 4 — trigger-footprint Jaccard similarity",
        format_table(["model"] + [str(s) for s in SIZES], rows),
    )
    # Decaying trend for the EFetch and EIP trigger models.  (The MANA
    # region trigger inverts at short footprints in our synthetic
    # traces — local optional-helper noise sits right after region
    # transitions; see EXPERIMENTS.md.)
    for model in ("efetch", "eip"):
        series = result[model]
        assert series[-1] <= series[0], model
    # EFetch's contextual signature keeps the highest similarity, as in
    # the paper.
    assert result["efetch"][0] == max(result[m][0] for m in result)
