"""Ablations on HP's design choices (DESIGN.md §6).

Not in the paper's evaluation; they quantify the decisions §5 argues
for: superseding records (quickly unlearning sporadic paths), num-insts
pacing (fitting prefetch groups in the L1-I), the two-segment launch,
and the divergence threshold (Bundle granularity).
"""

from repro.analysis.reporting import format_table
from repro.experiments.ablations import (
    ablation_initial_segments,
    ablation_pacing,
    ablation_record_policy,
    ablation_threshold,
)

WORKLOADS = ("beego", "tidb_tpcc")


def test_ablation_record_policy(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: ablation_record_policy(workloads=WORKLOADS, scale=scale),
        rounds=1, iterations=1,
    )
    emit(
        "Ablation — record policy (HP speedup)",
        format_table(
            ["policy", "speedup"],
            [[k, f"{v:+.1%}"] for k, v in result.items()],
        ),
    )
    # Superseding (paper) at least matches keeping the first recording.
    assert result["supersede"] >= result["keep_first"] - 0.01


def test_ablation_pacing(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: ablation_pacing(workloads=WORKLOADS, scale=scale),
        rounds=1, iterations=1,
    )
    emit(
        "Ablation — segment pacing (HP speedup)",
        format_table(
            ["mode", "speedup"],
            [[k, f"{v:+.1%}"] for k, v in result.items()],
        ),
    )
    assert result["paced"] >= result["all_at_once"] - 0.02


def test_ablation_initial_segments(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: ablation_initial_segments(
            workloads=WORKLOADS, scale=scale, values=(1, 2, 4)
        ),
        rounds=1, iterations=1,
    )
    emit(
        "Ablation — segments launched at Bundle start (HP speedup)",
        format_table(
            ["initial_segments", "speedup"],
            [[n, f"{v:+.1%}"] for n, v in result],
        ),
    )
    values = dict(result)
    assert values[2] >= max(values.values()) - 0.03  # paper default sane


def test_ablation_threshold(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: ablation_threshold(workload="tidb_tpcc", scale=scale,
                                   factors=(0.5, 1.0, 3.0)),
        rounds=1, iterations=1,
    )
    emit(
        "Ablation — Bundle divergence threshold (tidb_tpcc)",
        format_table(
            ["threshold_kb", "speedup", "static_bundles"],
            [[t // 1024, f"{s:+.1%}", n] for t, s, n in result],
        ),
    )
    # More aggressive thresholds yield more static bundles.
    bundles = [n for _, _, n in result]
    assert bundles == sorted(bundles, reverse=True)
    # The suite's tuned threshold (factor 1.0) beats a threshold too
    # coarse to separate the per-stage routines.
    by_factor = {t: s for t, s, _ in result}
    thresholds = sorted(by_factor)
    assert by_factor[thresholds[1]] >= by_factor[thresholds[2]] - 0.02
