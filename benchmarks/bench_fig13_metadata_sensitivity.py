"""Figure 13: Metadata Address Table and Metadata Buffer sensitivity.

Paper: HP's speedup saturates at 512 MAT entries and a 512 KB Metadata
Buffer — larger configurations add nothing, justifying the 1.94 KB
on-chip budget.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig13_metadata_sensitivity

WORKLOADS = ("beego", "tidb_tpcc")
MAT_SIZES = (32, 128, 512, 1024)
BUFFER_KB = (32, 128, 512, 1024)


def test_fig13_metadata_sensitivity(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig13_metadata_sensitivity(
            mat_sizes=MAT_SIZES, buffer_kb=BUFFER_KB,
            workloads=WORKLOADS, scale=scale,
        ),
        rounds=1, iterations=1,
    )
    emit(
        "Figure 13a — Metadata Address Table size vs. HP speedup",
        format_table(
            ["entries", "speedup"],
            [[n, f"{s:+.1%}"] for n, s in result["mat"]],
        ),
    )
    emit(
        "Figure 13b — Metadata Buffer size vs. HP speedup",
        format_table(
            ["KB", "speedup"],
            [[kb, f"{s:+.1%}"] for kb, s in result["buffer"]],
        ),
    )
    mat = dict(result["mat"])
    buf = dict(result["buffer"])
    # The paper-default configuration captures ~all of the benefit.
    assert mat[512] >= max(mat.values()) - 0.02
    assert buf[512] >= max(buf.values()) - 0.02
    # Starved configurations lose performance.
    assert mat[32] <= mat[512] + 1e-9
    assert buf[32] <= buf[512] + 1e-9
