"""Figure 15: FTQ size and I-TLB size sensitivity.

Paper: FDIP performs best around a 24-entry FTQ (deeper is mildly
counter-productive); more I-TLB entries help both configurations, with
HP keeping a consistent gain across all I-TLB sizes.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig15_ftq, fig15_itlb

WORKLOADS = ("beego", "tidb_tpcc")
FTQ_SIZES = (8, 16, 24, 48)
ITLB_SIZES = (32, 64, 128, 256)


def test_fig15a_ftq(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig15_ftq(sizes=FTQ_SIZES, workloads=WORKLOADS,
                          scale=scale),
        rounds=1, iterations=1,
    )
    emit(
        "Figure 15a — FDIP IPC vs. FTQ size (normalized to 24 entries)",
        format_table(
            ["ftq_entries", "relative_ipc"],
            [[n, f"{v:.4f}"] for n, v in result],
        ),
    )
    values = dict(result)
    # A too-shallow FTQ hurts; 24 entries is within noise of the best.
    assert values[8] <= values[24]
    assert values[24] >= max(values.values()) - 0.02


def test_fig15b_itlb(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig15_itlb(sizes=ITLB_SIZES, workloads=WORKLOADS,
                           scale=scale),
        rounds=1, iterations=1,
    )
    emit(
        "Figure 15b — IPC vs. I-TLB entries",
        format_table(
            ["itlb_entries", "fdip_ipc", "hp_ipc"],
            [[n, f"{b:.3f}", f"{h:.3f}"] for n, b, h in result],
        ),
    )
    # More I-TLB entries never hurt, and HP gains at every size.
    base_ipcs = [b for _, b, _ in result]
    assert base_ipcs == sorted(base_ipcs)
    assert all(h > b for _, b, h in result)
