"""Figure 2: look-ahead sensitivity of the fine-grained prefetchers.

Paper: MANA's and EFetch's accuracy declines as the look-ahead grows,
and coverage stops improving beyond a few spatial regions / function
calls; EIP's accuracy declines with prefetch distance.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import (
    fig02_efetch_lookahead,
    fig02_eip_distance_accuracy,
    fig02_mana_lookahead,
)

WORKLOADS = ("beego", "tidb_tpcc")
MANA_POINTS = (1, 2, 3, 6)
EFETCH_POINTS = (1, 3, 5, 8)


def test_fig02a_mana_lookahead(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig02_mana_lookahead(
            lookaheads=MANA_POINTS, workloads=WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [la, f"{acc:.1%}", f"{cov:.1%}"] for la, acc, cov in result
    ]
    emit(
        "Figure 2a — MANA look-ahead (spatial regions)",
        format_table(["lookahead", "accuracy", "coverage"], rows),
    )
    accs = [acc for _, acc, _ in result]
    # Accuracy declines as the look-ahead deepens.
    assert accs[-1] <= accs[0]


def test_fig02b_efetch_lookahead(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig02_efetch_lookahead(
            lookaheads=EFETCH_POINTS, workloads=WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [la, f"{acc:.1%}", f"{cov:.1%}"] for la, acc, cov in result
    ]
    emit(
        "Figure 2b — EFetch look-ahead (function calls)",
        format_table(["lookahead", "accuracy", "coverage"], rows),
    )
    accs = [acc for _, acc, _ in result]
    assert accs[-1] <= accs[0] + 0.02


def test_fig02c_eip_distance_accuracy(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig02_eip_distance_accuracy(
            workloads=WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [[f"{d:.1f}", f"{a:.1%}"] for d, a in result]
    emit(
        "Figure 2c — EIP accuracy vs. prefetch distance (cache blocks)",
        format_table(["avg_distance", "accuracy"], rows),
    )
    # Larger trigger lead -> larger distance overall.
    assert result[-1][0] >= result[0][0]
