"""Figure 1: per-stage instruction footprints of the TiDB-like workload.

Paper: TiDB under TPC-C progresses through Read / Dispatch / Compile /
Exec / Finish with per-stage footprints of 40-280 KB.  Our scaled
workload reproduces the shape: every stage has a footprint far beyond
the 32 KB L1-I, with Exec the largest.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig01_stage_footprints


def test_fig01_stage_footprints(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig01_stage_footprints("tidb_tpcc", scale=scale),
        rounds=1, iterations=1,
    )
    order = ["read", "dispatch", "compile", "exec", "finish"]
    rows = [[stage, f"{result[stage]:.1f}"] for stage in order]
    emit(
        "Figure 1 — tidb_tpcc average stage footprints (KB)",
        format_table(["stage", "footprint_kb"], rows),
    )
    assert all(result[stage] > 8.0 for stage in order)
    assert result["exec"] == max(result.values())
