"""Figure 17: prefetching Bundles directly into the L2.

Paper: directing HP's replay at the L2 captures most of the L1
benefit (5.8% vs 6.6% average) because L2-and-beyond latency is where
the long-range misses live.
"""

from repro.analysis.reporting import format_table, geomean
from repro.experiments.figures import fig17_l2_prefetch

WORKLOADS = (
    "beego", "caddy", "gorm", "mysql_sysbench", "tidb_tpcc", "mysql_ycsb",
)


def test_fig17_l2_prefetch(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig17_l2_prefetch(workloads=WORKLOADS, scale=scale),
        rounds=1, iterations=1,
    )
    rows = [
        [w, f"{result[w]['l1']:+.1%}", f"{result[w]['l2']:+.1%}"]
        for w in WORKLOADS
    ]
    mean_l1 = geomean([1 + result[w]["l1"] for w in WORKLOADS]) - 1
    mean_l2 = geomean([1 + result[w]["l2"] for w in WORKLOADS]) - 1
    rows.append(["GEOMEAN", f"{mean_l1:+.1%}", f"{mean_l2:+.1%}"])
    emit(
        "Figure 17 — HP speedup when prefetching to L1 vs. to L2",
        format_table(["workload", "to_L1", "to_L2"], rows),
    )
    # L2-directed prefetching is clearly beneficial and captures a
    # substantial share of the L1-directed benefit.
    assert mean_l2 > 0.0
    assert mean_l2 > 0.3 * mean_l1
