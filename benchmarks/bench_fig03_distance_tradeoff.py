"""Figure 3: accuracy and coverage as a function of prefetch distance.

Paper: across the SOTA fine-grained prefetchers, accuracy is inversely
correlated with average prefetch distance while coverage grows with it
— the dilemma Hierarchical Prefetching breaks.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig03_distance_tradeoff
from repro.experiments.runner import REPRESENTATIVE_WORKLOADS


def test_fig03_distance_tradeoff(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig03_distance_tradeoff(
            workloads=REPRESENTATIVE_WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [name, f"{dist:.1f}", f"{acc:.1%}", f"{cov:.1%}"]
        for name, (dist, acc, cov) in sorted(
            result.items(), key=lambda kv: kv[1][0]
        )
    ]
    emit(
        "Figure 3 — accuracy/coverage vs. avg prefetch distance",
        format_table(["prefetcher", "distance", "accuracy", "coverage"],
                     rows),
    )
    # EFetch has the shortest distance; its accuracy tops the group.
    efetch = result["efetch"]
    assert efetch[0] == min(v[0] for v in result.values())
    assert efetch[1] == max(v[1] for v in result.values())
