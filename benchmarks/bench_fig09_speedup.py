"""Figure 9 (+ §7.1 Perfect L1-I): IPC speedups over FDIP.

Paper: Hierarchical Prefetching wins on every workload with a 6.6%
average, vs. EIP 4.0%, MANA 1.6%, EFetch 1.4%; a perfect L1-I gives
16.8%, of which HP captures ~40% on average.  Our scaled platform is
more front-end-bound (see EXPERIMENTS.md), so absolute gains are
larger, but the ordering and the HP-to-perfect ratio hold.
"""

from repro.analysis.reporting import format_table, geomean
from repro.experiments.figures import PREFETCHERS, fig09_speedups
from repro.workloads.suite import WORKLOAD_NAMES


def test_fig09_speedups(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig09_speedups(workloads=WORKLOAD_NAMES, scale=scale),
        rounds=1, iterations=1,
    )
    columns = list(PREFETCHERS) + ["perfect_l1i"]
    rows = [
        [w] + [f"{result[w][c]:+.1%}" for c in columns]
        for w in WORKLOAD_NAMES
    ]
    means = [
        geomean([1.0 + result[w][c] for w in WORKLOAD_NAMES]) - 1.0
        for c in columns
    ]
    rows.append(["GEOMEAN"] + [f"{m:+.1%}" for m in means])
    emit(
        "Figure 9 — IPC speedup over FDIP",
        format_table(["workload"] + columns, rows),
    )
    mean = dict(zip(columns, means))
    # The paper's ordering: HP > EIP > MANA ~ EFetch, all positive.
    assert mean["hierarchical"] > mean["eip"] > mean["mana"] > 0
    assert mean["efetch"] > 0
    # HP is beneficial on every workload (§7.1).
    assert all(result[w]["hierarchical"] > 0 for w in WORKLOAD_NAMES)
    # HP captures a large minority of the perfect-L1I headroom (~40%
    # in the paper).
    ratio = mean["hierarchical"] / mean["perfect_l1i"]
    assert 0.15 < ratio < 0.9
