"""Benchmark configuration.

Every benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (through ``capfd.disabled()`` so the
output survives pytest's capture).  The workload scale is controlled by
``REPRO_SCALE`` (tiny / bench / full; default bench).

Simulation results flow through the layered cache in
``repro.experiments.runner``: benchmarks sharing runs (Figures 9-11,
Table 2, ...) pay for each simulation once per *disk cache lifetime*,
not once per process — a second benchmark invocation re-simulates
nothing (see docs/SWEEP_CACHE.md; root overridable with
``REPRO_CACHE_DIR``, disable with ``REPRO_DISK_CACHE=0``).  Set
``REPRO_JOBS=N`` to pre-warm the standard evaluation grid over N
worker processes before the (serial) benchmarks start.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "bench")
    if value not in ("tiny", "bench", "full"):
        raise ValueError(f"REPRO_SCALE must be tiny/bench/full, got {value}")
    return value


@pytest.fixture(scope="session", autouse=True)
def _sim_cache(scale):
    """Pre-warm the grid in parallel (opt-in) and report cache traffic.

    The standard grid covers what Figures 9-12 and Tables 2-3 need:
    every workload under the FDIP baseline, the comparison prefetchers,
    and the perfect-L1I headroom config.  Points already on disk are
    skipped, so a warm session forks no workers at all.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if jobs > 1:
        from repro.experiments.sweep import DEFAULT_PREFETCHERS, grid, sweep
        from repro.workloads.suite import WORKLOAD_NAMES

        points = grid(WORKLOAD_NAMES, DEFAULT_PREFETCHERS, scale=scale)
        points += grid(WORKLOAD_NAMES, (), scale=scale,
                       overrides={"hierarchy.perfect_l1i": True})
        sweep(points, jobs=jobs)
    yield


def pytest_terminal_summary(terminalreporter):
    """Show where this session's simulation results came from."""
    from repro.experiments.runner import run_cache_stats

    s = run_cache_stats()
    if s.lookups:
        terminalreporter.write_line(
            f"[repro] simulation cache: {s.simulations} simulated, "
            f"{s.disk_hits} disk hits, {s.memory_hits} memory hits"
        )


@pytest.fixture()
def emit(capfd):
    """Print a report block to the real terminal and persist it.

    Terminal capture can garble interleaved writes under some pytest
    configurations, so every block is also appended to
    ``benchmark_results.txt`` (override with ``REPRO_BENCH_RESULTS``).
    """
    results_path = os.environ.get("REPRO_BENCH_RESULTS",
                                  "benchmark_results.txt")

    def _emit(title: str, body: str) -> None:
        block = f"\n=== {title} ===\n{body}\n"
        with open(results_path, "a") as fh:
            fh.write(block)
            fh.flush()
        with capfd.disabled():
            print(block, flush=True)

    return _emit
