"""Benchmark configuration.

Every benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (through ``capfd.disabled()`` so the
output survives pytest's capture).  The workload scale is controlled by
``REPRO_SCALE`` (tiny / bench / full; default bench).  Simulation
results are cached per process, so benchmarks sharing runs (Figures
9-11, Table 2, ...) pay for each simulation once.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "bench")
    if value not in ("tiny", "bench", "full"):
        raise ValueError(f"REPRO_SCALE must be tiny/bench/full, got {value}")
    return value


@pytest.fixture()
def emit(capfd):
    """Print a report block to the real terminal and persist it.

    Terminal capture can garble interleaved writes under some pytest
    configurations, so every block is also appended to
    ``benchmark_results.txt`` (override with ``REPRO_BENCH_RESULTS``).
    """
    results_path = os.environ.get("REPRO_BENCH_RESULTS",
                                  "benchmark_results.txt")

    def _emit(title: str, body: str) -> None:
        block = f"\n=== {title} ===\n{body}\n"
        with open(results_path, "a") as fh:
            fh.write(block)
            fh.flush()
        with capfd.disabled():
            print(block, flush=True)

    return _emit
