"""Table 3: prefetcher behaviour across L1-I cache sizes.

Paper: growing the L1-I from 32 KB to 256 KB improves EIP's accuracy
(pollution absorbed) and everyone's coverage, while IPC gains shrink —
yet HP retains a significant advantage even at 256 KB thanks to
long-reuse-distance misses the L1 cannot capture.
"""

from repro.analysis.reporting import format_table
from repro.experiments.tables import tab03_l1i_sensitivity

WORKLOADS = ("beego", "tidb_tpcc")
SIZES = (32, 64, 128, 256)


def test_tab03_l1i_sensitivity(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: tab03_l1i_sensitivity(
            sizes_kb=SIZES, workloads=WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [
            r["prefetcher"], r["l1i_kb"],
            f"{r['accuracy']:.0%}", f"{r['coverage']:.0%}",
            f"{r['speedup']:+.1%}",
        ]
        for r in result
    ]
    emit(
        "Table 3 — L1-I size sensitivity",
        format_table(
            ["prefetcher", "l1i_kb", "accuracy", "coverage", "speedup"],
            rows,
        ),
    )
    by = {(r["prefetcher"], r["l1i_kb"]): r for r in result}
    # HP stays clearly beneficial at every L1-I size — the paper's
    # point that long-reuse misses defeat even a 256 KB L1-I.  (On our
    # substrate HP's gain is flat rather than gently shrinking; the
    # covered misses live beyond the L2 either way.)
    assert by[("hierarchical", 256)]["speedup"] > 0.02
    assert (by[("hierarchical", 256)]["speedup"]
            < by[("hierarchical", 32)]["speedup"] * 1.3)
    # EIP's accuracy improves once the larger L1 absorbs its pollution.
    assert by[("eip", 256)]["accuracy"] >= by[("eip", 32)]["accuracy"] - 0.02
