"""Table 4: Bundle statistics.

Paper (per workload): static bundles are a few percent of all
functions; dynamic Bundle footprints average 15-68 KB; executions run
for tens of thousands of cycles; consecutive executions of the same
Bundle overlap with Jaccard ~0.80-0.97.
"""

from repro.analysis.reporting import format_table
from repro.experiments.tables import tab04_bundle_stats

WORKLOADS = (
    "beego", "caddy", "dgraph", "echo", "gin", "gorm",
    "mysql_sysbench", "tidb_tpcc",
)


def test_tab04_bundle_stats(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: tab04_bundle_stats(workloads=WORKLOADS, scale=scale),
        rounds=1, iterations=1,
    )
    rows = []
    for w in WORKLOADS:
        r = result[w]
        rows.append([
            w, r["static_bundles"], r["total_functions"],
            f"{r['bundle_fraction']:.2%}",
            f"{r['avg_footprint_kb']:.1f}",
            f"{r['avg_exec_cycles']:.0f}",
            f"{r['avg_jaccard']:.3f}",
        ])
    emit(
        "Table 4 — Bundle statistics",
        format_table(
            ["workload", "bundles", "functions", "pct",
             "footprint_kb", "exec_cycles", "jaccard"],
            rows,
        ),
    )
    for w in WORKLOADS:
        r = result[w]
        # A small fraction of functions are Bundle entries.
        assert r["bundle_fraction"] < 0.10, w
        # Dynamic footprints in the 10s-of-KB range (around the L1-I).
        assert 4.0 < r["avg_footprint_kb"] < 200.0, w
        # Bundles execute for thousands of cycles.
        assert r["avg_exec_cycles"] > 1000, w
        # High consecutive-execution similarity (paper: > 0.79).
        assert r["avg_jaccard"] > 0.6, w
