"""Figure 14: speedups with infinite BTB capacity.

Paper: with an unconstrained BTB, FDIP captures most of what the
fine-grained prefetchers offered (EFetch/MANA/EIP drop to 0.3%/0.1%/
0.9%), while HP still delivers 4.2% — its long-range coverage is not a
metadata-capacity artifact.
"""

from repro.analysis.reporting import format_table, geomean
from repro.experiments.figures import PREFETCHERS, fig14_infinite_btb

WORKLOADS = (
    "beego", "caddy", "gorm", "mysql_sysbench", "tidb_tpcc", "mysql_ycsb",
)


def test_fig14_infinite_btb(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig14_infinite_btb(workloads=WORKLOADS, scale=scale),
        rounds=1, iterations=1,
    )
    rows = [
        [w] + [f"{result[w][p]:+.1%}" for p in PREFETCHERS]
        for w in WORKLOADS
    ]
    means = {
        p: geomean([1.0 + result[w][p] for w in WORKLOADS]) - 1.0
        for p in PREFETCHERS
    }
    rows.append(["GEOMEAN"] + [f"{means[p]:+.1%}" for p in PREFETCHERS])
    emit(
        "Figure 14 — speedups over FDIP with infinite BTB",
        format_table(["workload"] + list(PREFETCHERS), rows),
    )
    # HP remains clearly beneficial; fine-grained gains shrink toward 0.
    assert means["hierarchical"] > 0.01
    assert means["hierarchical"] > 2 * max(
        means["efetch"], means["mana"]
    )
