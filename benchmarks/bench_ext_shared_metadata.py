"""Extension: multi-core shared-metadata mode (paper §5.3).

The paper shares the Metadata Buffer across cores, with one randomly
chosen core generating the history, citing Shift/Confluence-style
control-flow commonality.  This extension experiment quantifies the
claim on our substrate: replay-only cores (running different request
streams of the same service) prefetch from the recorder core's history.
"""

from repro.analysis.reporting import format_table
from repro.cpu import MachineConfig
from repro.cpu.multicore import simulate_shared
from repro.workloads.cache import get_application
from repro.workloads.suite import requests_for

WORKLOAD = "mysql_sysbench"
N_CORES = 3


def test_ext_shared_metadata(benchmark, scale, emit):
    def run():
        app = get_application(WORKLOAD)
        n_requests = requests_for(WORKLOAD, scale)
        traces = [app.trace(n_requests, seed=s) for s in range(1, N_CORES + 1)]
        return simulate_shared(traces, config=MachineConfig())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for core in range(result.n_cores):
        role = "record+replay" if core == result.recorder_core else "replay-only"
        rows.append([
            f"core{core}", role,
            f"{result.speedup(core):+.1%}",
            f"{result.coverage(core):.0%}",
        ])
    emit(
        f"Extension — shared metadata across {N_CORES} cores "
        f"({WORKLOAD})",
        format_table(["core", "role", "speedup", "coverage"], rows),
    )
    # Every replay-only core profits from the recorder's history.
    for core in range(result.n_cores):
        if core != result.recorder_core:
            assert result.coverage(core) > 0.05
