"""Table 2: average prefetch distance, accuracy and coverage.

Paper: EFetch/MANA/EIP/HP distances 3.4/4.3/6.1/90 blocks; accuracy
58/55/30/53%; L1-I coverage 10/14/48/37%; L2 coverage 8/12/23/54%.  Our
distances are uniformly larger (the timing model's FDIP lead is
shallower), but the orderings hold: EFetch shortest-and-most-accurate,
EIP trades accuracy for coverage, HP operates at an order-of-magnitude
larger distance with the best L2 coverage.
"""

from repro.analysis.reporting import format_table
from repro.experiments.tables import tab02_distance_accuracy_coverage
from repro.workloads.suite import WORKLOAD_NAMES


def test_tab02_distance_accuracy_coverage(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: tab02_distance_accuracy_coverage(
            workloads=WORKLOAD_NAMES, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [
            name,
            f"{row['distance']:.1f}",
            f"{row['accuracy']:.0%}",
            f"{row['coverage_l1']:.0%}",
            f"{row['coverage_l2']:.0%}",
        ]
        for name, row in result.items()
    ]
    emit(
        "Table 2 — avg distance (blocks) / accuracy / coverage",
        format_table(
            ["prefetcher", "distance", "accuracy", "cov_L1", "cov_L2"],
            rows,
        ),
    )
    hp = result["hierarchical"]
    fine = [result[p] for p in ("efetch", "mana", "eip")]
    # HP's distance dwarfs the fine-grained prefetchers'.
    assert hp["distance"] > 2 * max(f["distance"] for f in fine)
    # HP has the best L2 coverage; EIP out-covers EFetch/MANA at L1.
    assert hp["coverage_l2"] == max(
        r["coverage_l2"] for r in result.values()
    )
    assert result["eip"]["coverage_l1"] > result["efetch"]["coverage_l1"]
    assert result["eip"]["coverage_l1"] > result["mana"]["coverage_l1"]
