"""Figure 16: memory bandwidth overhead of Hierarchical Prefetching.

Paper: HP adds only ~4% memory traffic on average (10% worst case),
with ~60% of the extra traffic being metadata reads/writes and the rest
over-predicted prefetches.  Measured here on memory-side traffic
(uncore fills + metadata): the data side is not modelled, so DRAM-only
traffic would be degenerate (see EXPERIMENTS.md).
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig16_bandwidth
from repro.workloads.suite import WORKLOAD_NAMES


def test_fig16_bandwidth(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig16_bandwidth(workloads=WORKLOAD_NAMES, scale=scale),
        rounds=1, iterations=1,
    )
    rows = [
        [w, f"{result[w]['overhead']:+.1%}",
         f"{result[w]['metadata_fraction']:.0%}"]
        for w in WORKLOAD_NAMES
    ]
    mean = sum(r["overhead"] for r in result.values()) / len(result)
    rows.append(["MEAN", f"{mean:+.1%}", ""])
    emit(
        "Figure 16 — HP memory-traffic overhead vs. FDIP baseline",
        format_table(["workload", "overhead", "metadata_share"], rows),
    )
    # The paper reports +4% mean overhead with ~60% of the extra
    # traffic being metadata.  Our scaled traces amortize metadata over
    # ~100x fewer instructions and carry no data-side traffic in the
    # denominator, so the relative overhead is much larger; the
    # metadata share is the claim we can check faithfully.
    assert mean > 0.0
    shares = [r["metadata_fraction"] for r in result.values()]
    assert sum(shares) / len(shares) > 0.5  # metadata dominates the extra
