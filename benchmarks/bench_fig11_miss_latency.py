"""Figure 11: instruction miss latency by serving level.

Paper: SOTA prefetchers barely dent the demand miss latency on top of
FDIP (EIP best at -19.7%); HP removes 38.7% by attacking both the L1
and L2 components.  We report exposed miss latency normalized to each
workload's FDIP baseline, split by serving level.
"""

from repro.analysis.reporting import format_table
from repro.cpu.stats import LEVELS
from repro.experiments.figures import (
    PREFETCHERS,
    fig11_latency_reduction,
    fig11_miss_latency,
)
from repro.workloads.suite import WORKLOAD_NAMES


def test_fig11_miss_latency(benchmark, scale, emit):
    def run():
        return (
            fig11_miss_latency(workloads=WORKLOAD_NAMES, scale=scale),
            fig11_latency_reduction(workloads=WORKLOAD_NAMES, scale=scale),
        )

    breakdown, reduction = benchmark.pedantic(run, rounds=1, iterations=1)
    # Mean normalized latency per prefetcher and level.
    configs = ["fdip"] + list(PREFETCHERS)
    rows = []
    for cfg in configs:
        row = [cfg]
        total = 0.0
        for level in LEVELS:
            v = sum(breakdown[w][cfg][level] for w in WORKLOAD_NAMES)
            v /= len(WORKLOAD_NAMES)
            total += v
            row.append(f"{v:.3f}")
        row.append(f"{total:.3f}")
        rows.append(row)
    emit(
        "Figure 11 — exposed miss latency (normalized to FDIP, MEAN)",
        format_table(["config"] + list(LEVELS) + ["total"], rows),
    )
    mean_reduction = {
        p: sum(reduction[w][p] for w in WORKLOAD_NAMES) / len(WORKLOAD_NAMES)
        for p in PREFETCHERS
    }
    emit(
        "Figure 11 — mean latency reduction over FDIP",
        format_table(
            ["prefetcher", "reduction"],
            [[p, f"{mean_reduction[p]:.1%}"] for p in PREFETCHERS],
        ),
    )
    # HP removes the most miss latency.
    assert mean_reduction["hierarchical"] == max(mean_reduction.values())
    assert mean_reduction["hierarchical"] > 0.2
