"""Figures 18/19 + Table 5: SLO/tail latency on the microservice grid.

Not in the paper — the SLOFetch-style extension family
(docs/MICROSERVICES.md): per-request p50/p99 latency and
SLO attainment for FDIP, baseline HP, and the compressed-metadata HP
variant over the request-graph workloads.
"""

import os

from repro.analysis.reporting import format_table
from repro.experiments.slo import (
    MICROSERVICE_NAMES,
    SLO_PREFETCHERS,
    fig18_slo_grid,
    fig19_slo_timeline,
    tab05_slo_summary,
)


def test_fig18_slo_grid(benchmark, scale, emit):
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cells = benchmark.pedantic(
        lambda: fig18_slo_grid(scale=scale, jobs=jobs),
        rounds=1, iterations=1,
    )
    rows = []
    for workload in MICROSERVICE_NAMES:
        for name in ("fdip",) + SLO_PREFETCHERS:
            c = cells[workload][name]
            rows.append([
                workload, name,
                f"{c['p50']:.0f}", f"{c['p99']:.0f}",
                f"{c['p99_vs_fdip']:.3f}",
                f"{c['slo_attainment']:.0%}",
                f"{c['l1i_mpki']:.2f}",
            ])
    emit(
        "Figure 18 — per-request latency and SLO attainment "
        "(microservice grid)",
        format_table(
            ["workload", "prefetcher", "p50_cyc", "p99_cyc",
             "p99_vs_fdip", "slo", "l1i_mpki"],
            rows,
        ),
    )
    summary = tab05_slo_summary(scale=scale, jobs=jobs)
    emit(
        "Table 5 — prefetcher scorecard vs. FDIP (geomean reductions)",
        format_table(
            ["prefetcher", "p99_reduction", "p50_reduction", "slo_delta"],
            [[name, f"{r99:+.1%}", f"{r50:+.1%}", f"{ds:+.2f}"]
             for name, r99, r50, ds in summary],
        ),
    )
    # Every cell carried request metrics, and the compressed variant's
    # 4x-smaller Metadata Buffer stays within a few percent of baseline
    # HP on the p99 scorecard (the compression claim under test —
    # offered load is identical per workload, so ratios are exact).
    assert all(cells[w][n]["count"] > 0
               for w in MICROSERVICE_NAMES
               for n in ("fdip",) + SLO_PREFETCHERS)
    by_name = {name: r99 for name, r99, _, _ in summary}
    assert abs(by_name["hp_compressed"] - by_name["hierarchical"]) < 0.05


def test_fig19_slo_timeline(benchmark, scale, emit):
    series = benchmark.pedantic(
        lambda: fig19_slo_timeline("msvc_hotel", scale=scale),
        rounds=1, iterations=1,
    )
    rows = [
        [str(i), f"{p50:.0f}", f"{p99:.0f}", f"{slo:.0%}"]
        for i, (p50, p99, slo) in enumerate(
            zip(series["p50"], series["p99"], series["slo"])
        )
    ]
    emit(
        "Figure 19 — windowed latency/SLO timeline (msvc_hotel, HP, "
        f"window={series['window']:.0f} requests, "
        f"threshold={series['slo_threshold']:.0f} cyc)",
        format_table(["window", "p50_cyc", "p99_cyc", "slo"], rows),
    )
    assert len(series["p99"]) == len(series["slo"]) >= 1
