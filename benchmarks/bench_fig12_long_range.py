"""Figure 12: eliminating L2 misses from long-range accesses.

Paper: on the L2 misses caused by the top-10% longest-reuse-distance
accesses, HP eliminates 53% on average (peak 72%) while EIP/EFetch/MANA
manage 21%/7%/11% — coarse-grained replay is what covers long-range
misses.  (Run on the representative subset: the reuse-distance analysis
is the most expensive part of the suite.)
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import PREFETCHERS, fig12_long_range
from repro.experiments.runner import REPRESENTATIVE_WORKLOADS


def test_fig12_long_range(benchmark, scale, emit):
    result = benchmark.pedantic(
        lambda: fig12_long_range(
            workloads=REPRESENTATIVE_WORKLOADS, scale=scale
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [w] + [f"{result[w][p]:.1%}" for p in PREFETCHERS]
        for w in REPRESENTATIVE_WORKLOADS
    ]
    means = {
        p: sum(result[w][p] for w in REPRESENTATIVE_WORKLOADS)
        / len(REPRESENTATIVE_WORKLOADS)
        for p in PREFETCHERS
    }
    rows.append(["MEAN"] + [f"{means[p]:.1%}" for p in PREFETCHERS])
    emit(
        "Figure 12 — long-range L2 miss elimination over FDIP",
        format_table(["workload"] + list(PREFETCHERS), rows),
    )
    # HP dominates on long-range misses.
    assert means["hierarchical"] == max(means.values())
    assert means["hierarchical"] > 0.25
    assert means["hierarchical"] > 1.5 * means["mana"]
