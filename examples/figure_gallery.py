#!/usr/bin/env python3
"""Render key paper figures as ASCII charts.

A lightweight visual companion to the benchmark suite: regenerates
Figure 9 (speedups), Figure 10 (late prefetches) and Figure 2a (MANA
look-ahead) on a subset of workloads and draws them with
:mod:`repro.analysis.charts`.

Run:
    python examples/figure_gallery.py [scale]
"""

import sys

from repro.analysis.charts import bar_chart, line_series
from repro.experiments.figures import (
    fig02_mana_lookahead,
    fig09_speedups,
    fig10_late_prefetches,
)

WORKLOADS = ("beego", "caddy", "tidb_tpcc")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"

    print(f"regenerating figures at scale {scale!r} "
          f"on {', '.join(WORKLOADS)} ...\n")

    speedups = fig09_speedups(workloads=WORKLOADS, scale=scale)
    for workload in WORKLOADS:
        row = speedups[workload]
        labels = ["efetch", "mana", "eip", "hierarchical", "perfect_l1i"]
        print(bar_chart(
            labels, [row[k] for k in labels],
            title=f"Figure 9 — {workload}: IPC speedup over FDIP",
        ))
        print()

    late = fig10_late_prefetches(workloads=WORKLOADS, scale=scale)
    labels = ["efetch", "mana", "eip", "hierarchical"]
    means = [
        sum(late[w][p] for w in WORKLOADS) / len(WORKLOADS)
        for p in labels
    ]
    print(bar_chart(labels, means, fmt="{:.1%}",
                    title="Figure 10 — late prefetches (mean)"))
    print()

    mana = fig02_mana_lookahead(lookaheads=(1, 2, 3, 6),
                                workloads=WORKLOADS, scale=scale)
    print(line_series(
        [(la, acc) for la, acc, _ in mana],
        title="Figure 2a — MANA accuracy vs. look-ahead",
        y_fmt="{:.0%}",
    ))


if __name__ == "__main__":
    main()
