#!/usr/bin/env python3
"""Define a custom synthetic server application and evaluate HP on it.

Shows the workload-model API end to end: describe a request pipeline
with :class:`AppParams`/:class:`StageSpec`, generate + link + load the
binary, emit an execution trace, and compare FDIP against Hierarchical
Prefetching.  Use this as the template for modelling your own service.

Run:
    python examples/custom_application.py
"""

from repro import make_prefetcher, simulate
from repro.workloads.appmodel import AppParams, StageSpec
from repro.workloads.generator import build_app


def main() -> None:
    # An RPC-gateway-style service: authenticate, route, transform,
    # and proxy, with the transform stage dispatching among several
    # per-request-type codecs.
    params = AppParams(
        name="rpc_gateway",
        seed=2024,
        stages=[
            StageSpec("auth", n_routines=2, routine_kb=20.0,
                      shared_frac=0.4),
            StageSpec("route", n_routines=3, routine_kb=24.0,
                      shared_frac=0.3),
            StageSpec("transform", n_routines=5, routine_kb=36.0,
                      shared_frac=0.25),
            StageSpec("proxy", n_routines=2, routine_kb=22.0,
                      shared_frac=0.35, skip_prob=0.1),
        ],
        n_request_types=5,
        zipf_alpha=0.8,
        shared_pool_kb=180.0,
        bundle_threshold=28 * 1024,
        base_requests=20,
    )

    print("Generating + linking the application ...")
    app = build_app(params)
    print(f"  {app}")
    print(f"  tagged call/return instructions: "
          f"{len(app.program.tagged)}")

    print("Tracing 12 requests ...")
    trace = app.trace(n_requests=12, seed=1)
    print(f"  {trace}")

    print("Simulating ...")
    baseline = simulate(trace)
    hp = simulate(trace, prefetcher=make_prefetcher("hierarchical"))

    print()
    print(f"  FDIP baseline : IPC {baseline.ipc:.3f}, "
          f"L1-I MPKI {baseline.l1i_mpki:.1f}")
    print(f"  FDIP + HP     : IPC {hp.ipc:.3f}, "
          f"L1-I MPKI {hp.l1i_mpki:.1f}")
    print(f"  speedup       : {hp.ipc / baseline.ipc - 1:+.1%}")


if __name__ == "__main__":
    main()
