#!/usr/bin/env python3
"""Bundle anatomy of a database workload.

Walks the software half of Hierarchical Prefetching on the TiDB-like
workload: the statement pipeline's per-stage footprints (Figure 1), the
link-time call-graph analysis with reachable sizes, the Bundle entry
points Algorithm 1 selects, and the dynamic Bundle statistics (Table 4)
from an instrumented HP run.

Run:
    python examples/database_bundles.py [workload] [scale]
"""

import sys

from repro import get_application, get_trace, simulate
from repro.analysis.footprints import stage_footprints
from repro.analysis.jaccard import bundle_similarity
from repro.analysis.reporting import format_table
from repro.core import HPConfig, HierarchicalPrefetcher, identify_bundles


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tidb_tpcc"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"

    app = get_application(workload)
    print(f"{app}\n")

    # --- Figure 1: stage footprints -------------------------------
    trace = get_trace(workload, scale=scale)
    fps = stage_footprints(trace)
    print("Per-stage instruction footprints (Figure 1):")
    print(format_table(
        ["stage", "avg footprint (KB)"],
        [[stage, f"{kb:.1f}"] for stage, kb in fps.items()],
    ))
    print()

    # --- Algorithm 1: Bundle identification -----------------------
    info = identify_bundles(app.binary, app.params.bundle_threshold)
    print(f"Algorithm 1 @ threshold "
          f"{app.params.bundle_threshold // 1024} KB: "
          f"{info.n_bundles} Bundle entries out of "
          f"{info.n_functions} functions "
          f"({info.bundle_fraction:.2%}).")
    live = sorted(
        (name for name in info.entries if not name.startswith("cold")),
        key=lambda n: -info.reachable[n],
    )
    rows = [[name, f"{info.reachable[name] // 1024}"] for name in live[:10]]
    print(format_table(["entry point", "reachable KB"], rows))
    print()

    # --- Table 4: dynamic Bundle statistics -----------------------
    pf = HierarchicalPrefetcher(HPConfig(track_bundles=True))
    stats = simulate(trace, prefetcher=pf)
    sim = bundle_similarity(trace)
    print("Dynamic Bundle statistics (Table 4):")
    print(f"  executions observed   : {sim['executions']}")
    print(f"  distinct Bundles      : {sim['distinct_bundles']}")
    print(f"  avg recorded footprint: "
          f"{stats.extra.get('hp_avg_footprint_kb', 0.0):.1f} KB")
    print(f"  avg execution length  : "
          f"{stats.extra.get('hp_avg_exec_cycles', 0.0):.0f} cycles")
    print(f"  consecutive-run Jaccard: {sim['avg_jaccard']:.3f}")


if __name__ == "__main__":
    main()
