#!/usr/bin/env python3
"""Web-framework study: all prefetchers on the Go web-server workloads.

Reproduces a slice of Figure 9 for the four HTTP-serving workloads
(beego, gin, echo, caddy): per-workload IPC speedups of EFetch, MANA,
EIP and Hierarchical Prefetching over the FDIP baseline, plus the
perfect-L1-I headroom.

Run:
    python examples/webserver_study.py [scale]
"""

import sys

from repro import MachineConfig, get_trace, make_prefetcher, simulate
from repro.analysis.reporting import format_table

WORKLOADS = ("beego", "gin", "echo", "caddy")
PREFETCHERS = ("efetch", "mana", "eip", "hierarchical")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "bench"
    perfect_cfg = MachineConfig().replace(**{"hierarchy.perfect_l1i": True})

    rows = []
    for workload in WORKLOADS:
        print(f"simulating {workload} ...", flush=True)
        trace = get_trace(workload, scale=scale)
        baseline = simulate(trace)
        row = [workload, f"{baseline.l1i_mpki:.1f}"]
        for name in PREFETCHERS:
            stats = simulate(trace, prefetcher=make_prefetcher(name))
            row.append(f"{stats.ipc / baseline.ipc - 1:+.1%}")
        perfect = simulate(trace, config=perfect_cfg)
        row.append(f"{perfect.ipc / baseline.ipc - 1:+.1%}")
        rows.append(row)

    print()
    print(format_table(
        ["workload", "mpki"] + list(PREFETCHERS) + ["perfect_l1i"],
        rows,
    ))
    print()
    print("Expected shape (paper Fig. 9): Hierarchical wins on every")
    print("workload; EIP is the strongest fine-grained prefetcher;")
    print("EFetch and MANA add little on top of FDIP.")


if __name__ == "__main__":
    main()
