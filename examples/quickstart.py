#!/usr/bin/env python3
"""Quickstart: Hierarchical Prefetching vs. the FDIP baseline.

Builds one of the paper's workloads (TiDB under TPC-C), simulates it on
the Table-1 machine with plain FDIP and with the Hierarchical
Prefetcher, and prints the headline metrics: IPC speedup, L1-I MPKI,
prefetch accuracy/coverage/timeliness, and Bundle activity.

Run:
    python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import get_trace, make_prefetcher, simulate
from repro.analysis.metrics import compare_run
from repro.memory.cache import ORIGIN_PF


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tidb_tpcc"
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"

    print(f"Building workload {workload!r} at scale {scale!r} ...")
    trace = get_trace(workload, scale=scale)
    print(f"  {trace}")

    print("Simulating FDIP baseline ...")
    baseline = simulate(trace)
    print(f"  IPC {baseline.ipc:.3f}, L1-I MPKI {baseline.l1i_mpki:.1f}, "
          f"L2 MPKI {baseline.l2_mpki:.1f}")

    print("Simulating FDIP + Hierarchical Prefetching ...")
    hp_stats = simulate(trace, prefetcher=make_prefetcher("hierarchical"))
    report = compare_run("hierarchical", hp_stats, baseline)

    print()
    print(f"  speedup over FDIP : {report.speedup:+.1%}")
    print(f"  L1-I MPKI         : {baseline.l1i_mpki:.1f} -> "
          f"{hp_stats.l1i_mpki:.1f}")
    print(f"  prefetch accuracy : {report.accuracy:.0%}")
    print(f"  L1 miss coverage  : {report.coverage_l1:.0%}")
    print(f"  L2 miss coverage  : {report.coverage_l2:.0%}")
    print(f"  late prefetches   : {report.late_fraction:.1%}")
    print(f"  avg distance      : {report.avg_distance:.0f} cache blocks")
    print(f"  prefetches issued : {hp_stats.pf_issued[ORIGIN_PF]}")
    print(f"  bundles triggered : "
          f"{hp_stats.extra.get('hp_bundles_triggered', 0):.0f} "
          f"(MAT hit rate "
          f"{hp_stats.extra.get('hp_mat_hit_rate', 0.0):.0%})")


if __name__ == "__main__":
    main()
