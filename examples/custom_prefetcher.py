#!/usr/bin/env python3
"""Write your own instruction prefetcher against the simulator API.

Implements a simple next-N-line prefetcher through the
:class:`~repro.prefetchers.base.InstructionPrefetcher` hook interface
and races it against the built-in prefetchers — demonstrating how to
plug new ideas into the evaluation harness.

Run:
    python examples/custom_prefetcher.py [workload] [scale]
"""

import sys

from repro import get_trace, make_prefetcher, simulate
from repro.analysis.reporting import format_table
from repro.memory.cache import ORIGIN_PF
from repro.prefetchers.base import InstructionPrefetcher


class NextLinesPrefetcher(InstructionPrefetcher):
    """On every new cache block, prefetch the next ``depth`` blocks.

    The classic sequential prefetcher.  Note that it is surprisingly
    strong on this substrate: the synthetic code layout is highly
    sequential and the FDIP model does not fetch through unknown
    branches (DESIGN.md §5), so blind next-line prefetching covers
    misses the baseline leaves exposed.  Record-and-replay prefetchers
    earn their keep on the *long-range* misses instead.
    """

    name = "nextline"

    def __init__(self, depth: int = 2):
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth

    def reset(self) -> None:
        self._last_block = -1

    def on_commit(self, i: int, now: float) -> None:
        trace = self.trace
        pc = trace.pc[i]
        block = (pc + trace.ninstr[i] * 4 - 1) >> 6
        if block == self._last_block:
            return
        self._last_block = block
        for step in range(1, self.depth + 1):
            self.issue(block + step, now, i)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "beego"
    scale = sys.argv[2] if len(sys.argv) > 2 else "bench"

    trace = get_trace(workload, scale=scale)
    baseline = simulate(trace)

    contenders = [
        ("nextline(2)", NextLinesPrefetcher(depth=2)),
        ("nextline(8)", NextLinesPrefetcher(depth=8)),
        ("eip", make_prefetcher("eip")),
        ("hierarchical", make_prefetcher("hierarchical")),
    ]
    rows = []
    for label, pf in contenders:
        stats = simulate(trace, prefetcher=pf)
        rows.append([
            label,
            f"{stats.ipc / baseline.ipc - 1:+.1%}",
            f"{stats.accuracy(ORIGIN_PF):.0%}",
            f"{stats.l1i_mpki:.1f}",
        ])
    print(f"{workload} @ {scale} — baseline IPC {baseline.ipc:.3f}, "
          f"MPKI {baseline.l1i_mpki:.1f}\n")
    print(format_table(
        ["prefetcher", "speedup", "accuracy", "mpki"], rows,
    ))


if __name__ == "__main__":
    main()
