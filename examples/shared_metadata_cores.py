#!/usr/bin/env python3
"""Multi-core shared-metadata mode (paper §5.3).

A server runs the same service on many cores; the paper exploits their
control-flow commonality by sharing one in-memory Metadata Buffer, with
a single core generating the Bundle history.  This example simulates
three cores on distinct request streams of one workload: core 0 records
and replays, cores 1-2 replay from core 0's history only.

Run:
    python examples/shared_metadata_cores.py [workload] [n_cores]
"""

import sys

from repro.analysis.reporting import format_table
from repro.cpu.multicore import simulate_shared
from repro.workloads.cache import get_application
from repro.workloads.suite import requests_for


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mysql_sysbench"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    app = get_application(workload)
    print(f"{app}")
    n_requests = requests_for(workload, "bench")
    print(f"tracing {n_cores} cores x {n_requests} requests ...")
    traces = [app.trace(n_requests, seed=seed)
              for seed in range(1, n_cores + 1)]

    print("simulating (recorder first, then replay-only cores) ...")
    result = simulate_shared(traces)

    rows = []
    for core in range(result.n_cores):
        role = ("record+replay" if core == result.recorder_core
                else "replay-only")
        rows.append([
            f"core{core}", role,
            f"{result.speedup(core):+.1%}",
            f"{result.coverage(core):.0%}",
        ])
    print()
    print(format_table(
        ["core", "role", "HP speedup", "miss coverage"], rows,
    ))
    print()
    print("Replay-only cores profit from the recorder's history because")
    print("the cores' Bundle footprints coincide — the paper's argument")
    print("for a single randomly-chosen history generator.")


if __name__ == "__main__":
    main()
